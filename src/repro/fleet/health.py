"""Fleet health rollups and fleet-level phenomenon detectors.

The fleet engine's timelines (PR 7) say what the *fleet* did —
aggregate power, demand, SLO attainment.  Operating a budget tree
needs the layer below: per-rack/row/datacenter health, continuously.
This module computes those rollups with the same vectorized tools the
engine itself uses (``np.add.reduceat`` over the topology's CSR group
pointers), feeds them into bounded
:class:`~repro.obs.timeseries.SeriesChannel` timelines, and scans the
finished run for three fleet-scale failure shapes, following the
:mod:`repro.obs.detect` conventions (structured
:class:`~repro.obs.detect.Detection` records, ``phenomenon_detected``
logs, ``repro_telemetry_detections_total`` counts):

- **budget thrash** — the tree keeps re-dividing: a large fraction of
  evaluated rebalances actually moved caps, so nodes live under a
  constantly shifting limit (the fleet-scale echo of the paper's
  per-node control-loop oscillation);
- **waterfill starvation** — low-priority nodes pinned at their cap
  floor while demand goes unserved: the division strategy has nothing
  left to give them, sustained;
- **SLO-debt runaway** — the fleet's debt accrual *rate* grows over
  the run instead of settling: the budget is infeasible for the
  offered load and shortfall compounds.

The per-tick path is engineered for the fleet engine's throughput
budget (< 10% of node-steps/s, guarded in
``benchmarks/test_bench_engine_throughput.py``): the floor-pin mask is
recomputed only when caps actually changed, the O(nodes) starvation
ops are skipped entirely while nothing is pinned, and channel points
are buffered into windows of :meth:`~FleetHealth.begin_run`-derived
stride so the per-rack channel writes amortize across ticks.
Everything else happens once at run end.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..obs.detect import Detection
from ..obs.timeseries import SeriesChannel
from .division import group_reduce
from .topology import FleetTopology

__all__ = [
    "HEALTH_CHANNELS",
    "MAX_RACK_CHANNELS",
    "FleetHealth",
    "detect_budget_thrash",
    "detect_waterfill_starvation",
    "detect_slo_debt_runaway",
]

#: Fleet-level health channel names and units, in recording order.
HEALTH_CHANNELS = (
    ("health_headroom_w", "W"),
    ("health_capfloor_frac", "fraction"),
    ("health_slo_debt_rate_w", "W"),
    ("health_escalation_level", "level"),
)

#: Per-rack headroom channels are only recorded up to this rack count —
#: beyond it the channel dict itself would dominate memory and the
#: per-rack story belongs in aggregate percentiles, not 10^4 series.
MAX_RACK_CHANNELS = 64

#: Applied caps within this many Watts of the floor count as pinned
#: (caps are integer-rounded like a BMC's Set Power Limit).
_FLOOR_TOL_W = 0.5

# Detector thresholds, tuned so the default demo fleet (flat traffic,
# feasible budget) stays quiet and an infeasible budget with bursty
# traffic trips all three.
THRASH_MIN_APPLIED = 10
THRASH_MIN_APPLY_RATE = 0.5
STARVATION_MIN_FRACTION = 0.5
RUNAWAY_MIN_GROWTH = 2.0


class FleetHealth:
    """Per-tick health rollups for one fleet run.

    The engine calls :meth:`observe_tick` with arrays it already
    computed (power, the rack rollup, current allocations); this class
    folds them into bounded timelines and run-end aggregates.  It
    draws no random numbers and mutates no engine state, so enabling
    it cannot change simulation results.
    """

    def __init__(
        self,
        topology: FleetTopology,
        capacity: int,
        sink: Optional[Callable[[float, float, dict], None]] = None,
    ) -> None:
        self._topo = topology
        # Optional ``sink(t0, dt, rollup)`` invoked once per flushed
        # window (the archive's health_sink) — None keeps the flush
        # path identical to the unsinked one the throughput guard
        # measures.
        self._sink = sink
        self.channels: Dict[str, SeriesChannel] = {
            name: SeriesChannel(name, unit, capacity=capacity)
            for name, unit in HEALTH_CHANNELS
        }
        self._rack_channels = topology.n_racks <= MAX_RACK_CHANNELS
        if self._rack_channels:
            for r in range(topology.n_racks):
                name = f"rack{r}_headroom_w"
                self.channels[name] = SeriesChannel(
                    name, "W", capacity=capacity
                )
        if self._rack_channels:
            self._rack_names = [
                f"rack{r}_headroom_w" for r in range(topology.n_racks)
            ]
        # Run-end aggregates.
        self._ticks = 0
        self._headroom_sum = 0.0
        self._capfloor_sum = 0.0
        self._debt_rate_sum = 0.0
        self._max_level = 0
        self._starved_ticks = np.zeros(topology.n_nodes, dtype=np.int64)
        # Rack headroom is accumulated as two halves — rack allocation
        # and rack power — folded in at window flushes, not per tick.
        self._rack_power_acc = np.zeros(topology.n_racks)
        self._rack_alloc_acc = np.zeros(topology.n_racks)
        # Floor-pin cache: caps move only at applied rebalances, so the
        # O(nodes) mask is recomputed on demand, not per tick.
        self._capfloor_frac = 0.0
        self._pinned: Optional[np.ndarray] = None
        self._any_pinned = False
        # Latest budget, used when the window is reduced.
        self._budget_w = 0.0
        self._alloc_buffers(1)

    def _alloc_buffers(self, stride: int) -> None:
        """(Re)allocate the window buffers for ``stride`` ticks.

        The buffers are deliberately tiny (racks wide, not nodes) —
        node-wide quantities fold into in-place accumulators instead
        so the hot loop's cache footprint stays near the engine's own.
        """
        t = self._topo
        self._stride = stride
        self._w_ticks = 0
        self._w_t0 = 0.0
        self._w_dt = 0.0
        self._pwin_acc = np.zeros(t.n_nodes)
        self._abuf = np.zeros((stride, t.n_racks))
        self._has_alloc = np.zeros(stride, dtype=bool)
        self._psums: List[float] = []
        self._ssums: List[float] = []
        self._levels: List[float] = []

    def begin_run(self, n_ticks: int) -> None:
        """Size the window buffers to the run length.

        Targeting ~128 flushed windows keeps every channel well below
        its capacity (no decimation churn) while amortizing all numpy
        reductions and channel writes across the window; short runs
        keep per-tick resolution so the detectors see every point.
        """
        self._alloc_buffers(max(1, int(n_ticks) // 128))

    def observe_tick(
        self,
        time_s: float,
        dt_s: float,
        power_sum: float,
        power: np.ndarray,
        applied_cap_w: np.ndarray,
        floor_w: np.ndarray,
        shortfall: np.ndarray,
        shortfall_sum: float,
        slo_slack_w: float,
        rack_alloc: Optional[np.ndarray],
        fleet_budget_w: float,
        max_level: int,
        caps_changed: bool = True,
        want_rollup: bool = True,
    ) -> Optional[dict]:
        """Fold one tick's state; returns the fleet-level rollup values.

        The hot path only *buffers*: per-node rows land in
        preallocated window arrays and every numpy reduction is
        deferred to :meth:`_flush_window`, which processes the whole
        window vectorized.  ``power`` is the per-node measured power;
        ``rack_alloc`` is None until the first division arms the tree —
        headroom then falls back to the whole-fleet budget and the
        per-rack channels stay silent for those ticks.
        ``caps_changed`` flushes the window early so the floor-pin
        mask stays tick-accurate while being recomputed only when caps
        actually moved.  Pass ``want_rollup=False`` (the engine does,
        unless the fleet stream has a subscriber) to skip building the
        per-tick rollup dict.
        """
        self._ticks += 1

        if caps_changed or self._pinned is None:
            # Settle buffered ticks under the outgoing mask first.
            if self._w_ticks:
                self._flush_window()
            armed = np.isfinite(applied_cap_w)
            pinned = armed & (applied_cap_w <= floor_w + _FLOOR_TOL_W)
            self._pinned = pinned
            self._any_pinned = bool(pinned.any())
            self._capfloor_frac = (
                float(np.count_nonzero(pinned)) / self._topo.n_nodes
            )

        j = self._w_ticks
        if j == 0:
            self._w_t0 = time_s
        self._w_ticks = j + 1
        self._w_dt += dt_s
        if rack_alloc is not None:
            self._pwin_acc += power
            self._abuf[j] = rack_alloc
            self._has_alloc[j] = True
        else:
            self._has_alloc[j] = False
        if self._any_pinned:
            self._starved_ticks += self._pinned & (shortfall > slo_slack_w)
        self._psums.append(power_sum)
        self._ssums.append(shortfall_sum)
        self._levels.append(float(max_level))
        self._budget_w = fleet_budget_w
        if self._w_ticks >= self._stride:
            self._flush_window()
        if not want_rollup:
            return None
        if rack_alloc is not None:
            headroom = float(rack_alloc.sum()) - power_sum
        else:
            headroom = fleet_budget_w - power_sum
        return {
            "headroom_w": headroom,
            "capfloor_frac": self._capfloor_frac,
            "slo_debt_rate_w": shortfall_sum,
            "escalation_level": max_level,
        }

    def _rack_headroom_total(self) -> np.ndarray:
        """Per-rack headroom summed over all allocated ticks so far."""
        return self._rack_alloc_acc - self._rack_power_acc

    def _flush_window(self) -> None:
        """Reduce the buffered window: one vectorized pass per stride.

        The window is homogeneous by construction — the pin mask and
        capfloor fraction are constant inside it (a cap change flushes
        early), so per-window means/extrema computed here equal the
        per-tick folds they replace.
        """
        n = self._w_ticks
        if n == 0:
            return
        psums = np.array(self._psums)
        ssums = np.array(self._ssums)
        levels = np.array(self._levels)
        has_alloc = self._has_alloc[:n]
        n_alloc = int(np.count_nonzero(has_alloc))

        rack_headroom = None
        if n_alloc == n:
            alloc_sums = self._abuf[:n].sum(axis=1)
            headroom = alloc_sums - psums
            rack_alloc_sum = self._abuf[:n].sum(axis=0)
        elif n_alloc == 0:
            headroom = self._budget_w - psums
        else:
            alloc_sums = self._abuf[:n].sum(axis=1)
            headroom = np.where(
                has_alloc, alloc_sums - psums, self._budget_w - psums
            )
            rack_alloc_sum = self._abuf[:n][has_alloc].sum(axis=0)
        if n_alloc:
            rack_power_sum = group_reduce(
                self._pwin_acc, self._topo.rack_ptr
            )
            self._pwin_acc[:] = 0.0
            self._rack_alloc_acc += rack_alloc_sum
            self._rack_power_acc += rack_power_sum
            rack_headroom = rack_alloc_sum - rack_power_sum

        cf = self._capfloor_frac
        self._headroom_sum += float(headroom.sum())
        self._capfloor_sum += cf * n
        self._debt_rate_sum += float(ssums.sum())
        level_max = int(levels.max())
        if level_max > self._max_level:
            self._max_level = level_max

        ch = self.channels
        t0, dt = self._w_t0, self._w_dt
        ch["health_headroom_w"].add(
            t0, dt, float(headroom.mean()),
            float(headroom.min()), float(headroom.max()),
        )
        ch["health_capfloor_frac"].add(t0, dt, cf, cf, cf)
        ch["health_slo_debt_rate_w"].add(
            t0, dt, float(ssums.mean()),
            float(ssums.min()), float(ssums.max()),
        )
        ch["health_escalation_level"].add(
            t0, dt, float(levels.mean()),
            float(levels.min()), level_max,
        )
        if self._rack_channels and rack_headroom is not None:
            means = (rack_headroom / n_alloc).tolist()
            for name, mean in zip(self._rack_names, means):
                ch[name].add(t0, dt, mean)
        if self._sink is not None:
            self._sink(
                t0,
                dt,
                {
                    "headroom_w": float(headroom.mean()),
                    "capfloor_frac": cf,
                    "slo_debt_rate_w": float(ssums.mean()),
                    "escalation_level": float(levels.mean()),
                },
            )

        self._w_ticks = 0
        self._w_dt = 0.0
        self._psums.clear()
        self._ssums.clear()
        self._levels.clear()

    def finish(self) -> None:
        """Flush any partial channel window at run end."""
        self._flush_window()

    # ------------------------------------------------------------------
    # Run-end summaries
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Mean rollups over the run (the ``observe_health`` payload)."""
        ticks = max(1, self._ticks)
        return {
            "mean_headroom_w": self._headroom_sum / ticks,
            "mean_capfloor_frac": self._capfloor_sum / ticks,
            "mean_slo_debt_rate_w": self._debt_rate_sum / ticks,
            "max_escalation_level": self._max_level,
        }

    def rack_headroom_means(self) -> np.ndarray:
        """Per-rack mean headroom over the run (W)."""
        return self._rack_headroom_total() / max(1, self._ticks)

    def starved_fractions(self) -> np.ndarray:
        """Per-node fraction of ticks spent floor-pinned and starving."""
        return self._starved_ticks / max(1, self._ticks)

    def detect(
        self,
        rebalances,
        budget_w: float,
        ticks: int,
        dt_s: float,
    ) -> List[Detection]:
        """All fleet-level detections for the finished run."""
        detections = []
        for det in (
            detect_budget_thrash(rebalances, budget_w),
            detect_waterfill_starvation(
                self.starved_fractions(), budget_w, ticks
            ),
            detect_slo_debt_runaway(
                self.channels["health_slo_debt_rate_w"], budget_w
            ),
        ):
            if det is not None:
                detections.append(det)
        return detections


def detect_budget_thrash(
    rebalances,
    budget_w: float,
    min_applied: int = THRASH_MIN_APPLIED,
    min_apply_rate: float = THRASH_MIN_APPLY_RATE,
) -> Optional[Detection]:
    """Flag a budget tree that keeps moving caps.

    Hysteresis exists so the tree settles; when at least
    ``min_apply_rate`` of the evaluated rebalances still applied (and
    enough of them happened to matter), the readings keep crossing the
    threshold and nodes live under a churning limit.
    """
    evaluated = len(rebalances)
    if evaluated == 0:
        return None
    applied = sum(1 for r in rebalances if r.applied)
    rate = applied / evaluated
    if applied < min_applied or rate < min_apply_rate:
        return None
    forced = sum(1 for r in rebalances if r.forced_by_escalation)
    return Detection(
        phenomenon="budget_thrash",
        workload="fleet",
        cap_w=budget_w,
        detail={
            "applied": float(applied),
            "evaluated": float(evaluated),
            "apply_rate": round(rate, 4),
            "forced_by_escalation": float(forced),
        },
    )


def detect_waterfill_starvation(
    starved_fractions: np.ndarray,
    budget_w: float,
    ticks: int,
    min_fraction: float = STARVATION_MIN_FRACTION,
) -> Optional[Detection]:
    """Flag nodes the division strategy has durably starved.

    A node counts as starving on a tick when its applied cap sits at
    the (possibly escalated) floor *and* its shortfall exceeds the SLO
    slack — the waterfill ran dry before reaching it.  Sustained for
    ``min_fraction`` of the run, that is a policy failure, not noise.
    """
    if ticks <= 0 or starved_fractions.size == 0:
        return None
    starving = starved_fractions >= min_fraction
    count = int(np.count_nonzero(starving))
    if count == 0:
        return None
    return Detection(
        phenomenon="waterfill_starvation",
        workload="fleet",
        cap_w=budget_w,
        detail={
            "starved_nodes": float(count),
            "starved_node_frac": round(
                count / starved_fractions.size, 6
            ),
            "worst_starved_fraction": round(
                float(starved_fractions.max()), 4
            ),
            "threshold": float(min_fraction),
        },
    )


def detect_slo_debt_runaway(
    debt_rate_channel: SeriesChannel,
    budget_w: float,
    min_growth: float = RUNAWAY_MIN_GROWTH,
) -> Optional[Detection]:
    """Flag debt accrual that grows instead of settling.

    Compares the duration-weighted mean debt rate in the last quarter
    of the run against the first quarter: a healthy fleet settles
    (caps arm, escalation bites, the rate flattens or falls); a ratio
    above ``min_growth`` means shortfall is compounding and the budget
    cannot serve the offered load.
    """
    points = debt_rate_channel.points()
    if len(points) < 8:
        return None
    quarter = len(points) // 4
    head, tail = points[:quarter], points[-quarter:]

    def _mean(pts) -> float:
        total = sum(p.dt_s for p in pts)
        if total <= 0:
            return 0.0
        return sum(p.mean * p.dt_s for p in pts) / total

    head_rate = _mean(head)
    tail_rate = _mean(tail)
    if tail_rate <= 0:
        return None
    # A quiet start inflates any ratio; require real accrual late in
    # the run before flagging.
    if head_rate <= 0:
        grew = tail_rate > 1.0
        growth = float("inf")
    else:
        growth = tail_rate / head_rate
        grew = growth >= min_growth and tail_rate > 1.0
    if not grew:
        return None
    return Detection(
        phenomenon="slo_debt_runaway",
        workload="fleet",
        cap_w=budget_w,
        detail={
            "head_rate_w": round(head_rate, 3),
            "tail_rate_w": round(tail_rate, 3),
            "growth": (
                round(growth, 4) if growth != float("inf") else -1.0
            ),
            "threshold": float(min_growth),
        },
    )
