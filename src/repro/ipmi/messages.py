"""IPMI wire-format messages.

Implements the IPMB-style framing used for the simulated out-of-band
channel: responder address, network function/LUN, a header checksum,
requester address, sequence number, command byte, payload, and a
trailing checksum.  Checksums are the IPMI two's-complement eight-bit
kind, so corrupted frames are detected exactly the way a real BMC
rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..errors import IpmiError

__all__ = [
    "NetFn",
    "CompletionCode",
    "checksum8",
    "IpmiMessage",
    "IpmiResponse",
]


class NetFn(IntEnum):
    """IPMI network function codes (request values; response = +1)."""

    CHASSIS = 0x00
    SENSOR_EVENT = 0x04
    APP = 0x06
    STORAGE = 0x0A
    TRANSPORT = 0x0C
    #: The DCMI group extension rides on NetFn 0x2C.
    GROUP_EXTENSION = 0x2C


class CompletionCode(IntEnum):
    """IPMI completion codes used by the simulated BMC."""

    OK = 0x00
    NODE_BUSY = 0xC0
    INVALID_COMMAND = 0xC1
    TIMEOUT = 0xC3
    REQUEST_DATA_INVALID = 0xCC
    POWER_LIMIT_OUT_OF_RANGE = 0x84
    POWER_LIMIT_NOT_ACTIVE = 0x80
    UNSPECIFIED = 0xFF


def checksum8(data: bytes) -> int:
    """IPMI two's-complement checksum: sum(data + chk) % 256 == 0."""
    return (-sum(data)) & 0xFF


#: DCMI messages carry this group-extension identifier as byte 0.
DCMI_GROUP_EXT_ID = 0xDC


@dataclass(frozen=True)
class IpmiMessage:
    """One IPMB request frame."""

    rs_addr: int
    net_fn: int
    rq_addr: int
    rq_seq: int
    cmd: int
    data: bytes = b""
    lun: int = 0

    def __post_init__(self) -> None:
        for name in ("rs_addr", "rq_addr", "rq_seq", "cmd"):
            v = getattr(self, name)
            if not 0 <= v <= 0xFF:
                raise IpmiError(f"{name} must fit in one byte, got {v}")
        if not 0 <= self.net_fn <= 0x3F:
            raise IpmiError(f"net_fn must fit in six bits, got {self.net_fn}")
        if not 0 <= self.lun <= 3:
            raise IpmiError(f"lun must be 0..3, got {self.lun}")

    def encode(self) -> bytes:
        """Serialise with both IPMI checksums."""
        header = bytes([self.rs_addr, (self.net_fn << 2) | self.lun])
        body = bytes([self.rq_addr, (self.rq_seq << 2) | 0, self.cmd]) + self.data
        return header + bytes([checksum8(header)]) + body + bytes([checksum8(body)])

    @classmethod
    def decode(cls, frame: bytes) -> "IpmiMessage":
        """Parse and validate a frame; raises :class:`IpmiError` on corruption."""
        if len(frame) < 7:
            raise IpmiError(f"frame too short ({len(frame)} bytes)")
        header, hchk = frame[:2], frame[2]
        if checksum8(header) != hchk:
            raise IpmiError("header checksum mismatch")
        body, bchk = frame[3:-1], frame[-1]
        if checksum8(body) != bchk:
            raise IpmiError("body checksum mismatch")
        return cls(
            rs_addr=header[0],
            net_fn=header[1] >> 2,
            lun=header[1] & 0x3,
            rq_addr=body[0],
            rq_seq=body[1] >> 2,
            cmd=body[2],
            data=bytes(body[3:]),
        )


@dataclass(frozen=True)
class IpmiResponse:
    """One IPMB response frame (request fields echoed + completion code)."""

    rq_addr: int
    net_fn: int
    rs_addr: int
    rq_seq: int
    cmd: int
    completion_code: int = int(CompletionCode.OK)
    data: bytes = b""
    lun: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.completion_code <= 0xFF:
            raise IpmiError("completion code must fit in one byte")

    @property
    def ok(self) -> bool:
        """True when the command completed successfully."""
        return self.completion_code == int(CompletionCode.OK)

    def encode(self) -> bytes:
        """Serialise with both IPMI checksums."""
        header = bytes([self.rq_addr, (self.net_fn << 2) | self.lun])
        body = (
            bytes([self.rs_addr, (self.rq_seq << 2) | 0, self.cmd])
            + bytes([self.completion_code])
            + self.data
        )
        return header + bytes([checksum8(header)]) + body + bytes([checksum8(body)])

    @classmethod
    def decode(cls, frame: bytes) -> "IpmiResponse":
        """Parse and validate a response frame."""
        if len(frame) < 8:
            raise IpmiError(f"response frame too short ({len(frame)} bytes)")
        header, hchk = frame[:2], frame[2]
        if checksum8(header) != hchk:
            raise IpmiError("header checksum mismatch")
        body, bchk = frame[3:-1], frame[-1]
        if checksum8(body) != bchk:
            raise IpmiError("body checksum mismatch")
        return cls(
            rq_addr=header[0],
            net_fn=header[1] >> 2,
            lun=header[1] & 0x3,
            rs_addr=body[0],
            rq_seq=body[1] >> 2,
            cmd=body[2],
            completion_code=body[3],
            data=bytes(body[4:]),
        )

    @classmethod
    def for_request(
        cls,
        request: IpmiMessage,
        completion_code: int = int(CompletionCode.OK),
        data: bytes = b"",
    ) -> "IpmiResponse":
        """Build the response matching a request's addressing."""
        return cls(
            rq_addr=request.rq_addr,
            net_fn=request.net_fn + 1,
            rs_addr=request.rs_addr,
            rq_seq=request.rq_seq,
            cmd=request.cmd,
            completion_code=completion_code,
            data=data,
        )
