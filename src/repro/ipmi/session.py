"""IPMI session layer.

A thin model of IPMI session establishment: the client authenticates
with a shared secret, receives a session id, and every subsequent
request carries a monotonically increasing sequence number the peer
checks for replay.  This is deliberately lighter than RMCP+ (no cipher
suites) but preserves the properties the tests care about: requests
without a session are rejected, wrong secrets are rejected, and stale
sequence numbers are rejected.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from ..errors import IpmiSessionError

__all__ = ["IpmiSession", "SessionAuthenticator"]


def _digest(secret: str, payload: str) -> str:
    return hmac.new(secret.encode(), payload.encode(), hashlib.sha256).hexdigest()


@dataclass
class IpmiSession:
    """Client-side session state."""

    session_id: int
    secret: str
    seq: int = 0

    def next_seq(self) -> int:
        """Sequence number for the next request (6-bit wraparound)."""
        self.seq = (self.seq + 1) & 0x3F
        # IPMI sequence numbers skip 0 after wrap so a reset is detectable.
        if self.seq == 0:
            self.seq = 1
        return self.seq

    def tag(self, frame: bytes) -> str:
        """Authentication tag for a frame under this session's secret."""
        return _digest(self.secret, f"{self.session_id}:{frame.hex()}")


class SessionAuthenticator:
    """BMC-side session management."""

    def __init__(self, secret: str) -> None:
        if not secret:
            raise IpmiSessionError("session secret must be non-empty")
        self._secret = secret
        self._next_id = 0x1000
        self._last_seq: dict[int, int] = {}

    def open(self, secret: str) -> IpmiSession:
        """Authenticate and open a session."""
        if not hmac.compare_digest(secret, self._secret):
            raise IpmiSessionError("authentication failed: bad secret")
        sid = self._next_id
        self._next_id += 1
        self._last_seq[sid] = 0
        return IpmiSession(session_id=sid, secret=secret)

    def close(self, session: IpmiSession) -> None:
        """Tear a session down; its id can no longer be used."""
        self._last_seq.pop(session.session_id, None)

    def is_open(self, session_id: int) -> bool:
        """Whether a session id is live."""
        return session_id in self._last_seq

    def validate(self, session_id: int, seq: int, frame: bytes, tag: str) -> None:
        """Check a request's session, sequence freshness, and tag.

        Raises :class:`IpmiSessionError` on any violation.  Sequence
        numbers must strictly increase (mod the 6-bit wrap) — replays
        of an old frame are rejected.
        """
        if session_id not in self._last_seq:
            raise IpmiSessionError(f"no such session 0x{session_id:X}")
        expected = _digest(self._secret, f"{session_id}:{frame.hex()}")
        if not hmac.compare_digest(expected, tag):
            raise IpmiSessionError("authentication tag mismatch")
        last = self._last_seq[session_id]
        fresh = seq > last or (last > 0x30 and seq < 0x10)  # window across wrap
        if not fresh:
            raise IpmiSessionError(f"stale sequence number {seq} (last {last})")
        self._last_seq[session_id] = seq
