"""Simulated out-of-band LAN transport.

"Because a BMC is connected to its own Network Interface Controller
(NIC), this is accomplished out-of-band, i.e., without going through
the operating system" (Section II-A).  The management network is
modelled as a lossy datagram channel: per-frame latency jitter, a drop
probability, and a corruption probability (which the IPMI checksums
then catch).  :class:`LanTransport` carries frames between registered
endpoints; delivery is synchronous request/response with retries, which
is how DCM actually polls BMCs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import IpmiTransportError
from .messages import IpmiMessage, IpmiResponse

__all__ = ["LanTransport", "TransportEndpoint", "TransportStats"]

#: An endpoint handler: raw request frame in, raw response frame out.
FrameHandler = Callable[[bytes], bytes]


@dataclass
class TransportStats:
    """Counters for the channel."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    corrupted: int = 0
    retries: int = 0


@dataclass
class TransportEndpoint:
    """A device on the management LAN (a BMC or the DCM server)."""

    address: str
    handler: Optional[FrameHandler] = None


class LanTransport:
    """Datagram channel with loss, corruption, and latency."""

    def __init__(
        self,
        rng: np.random.Generator,
        drop_probability: float = 0.002,
        corruption_probability: float = 0.001,
        latency_ms_range: Tuple[float, float] = (0.2, 1.5),
        max_retries: int = 3,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise IpmiTransportError("drop probability must be in [0,1)")
        if not 0.0 <= corruption_probability < 1.0:
            raise IpmiTransportError("corruption probability must be in [0,1)")
        if latency_ms_range[0] < 0 or latency_ms_range[1] < latency_ms_range[0]:
            raise IpmiTransportError("invalid latency range")
        self._rng = rng
        self._drop_p = drop_probability
        self._corrupt_p = corruption_probability
        self._latency_range = latency_ms_range
        self._max_retries = max_retries
        self._endpoints: Dict[str, TransportEndpoint] = {}
        self.stats = TransportStats()
        self._elapsed_ms = 0.0

    @property
    def elapsed_ms(self) -> float:
        """Total simulated channel time consumed so far."""
        return self._elapsed_ms

    def register(self, address: str, handler: FrameHandler) -> TransportEndpoint:
        """Attach a device at an address (e.g. ``"10.0.0.17"``)."""
        if address in self._endpoints:
            raise IpmiTransportError(f"address {address} already registered")
        ep = TransportEndpoint(address=address, handler=handler)
        self._endpoints[address] = ep
        return ep

    def unregister(self, address: str) -> None:
        """Detach a device."""
        self._endpoints.pop(address, None)

    def addresses(self) -> List[str]:
        """All registered addresses."""
        return sorted(self._endpoints)

    def _one_way(self, frame: bytes) -> Optional[bytes]:
        """Deliver one frame, applying loss/corruption/latency."""
        self._elapsed_ms += float(self._rng.uniform(*self._latency_range))
        if self._rng.random() < self._drop_p:
            self.stats.dropped += 1
            return None
        if self._corrupt_p and self._rng.random() < self._corrupt_p:
            self.stats.corrupted += 1
            i = int(self._rng.integers(0, len(frame)))
            flipped = frame[:i] + bytes([frame[i] ^ 0xFF]) + frame[i + 1 :]
            return flipped
        return frame

    def request(self, address: str, frame: bytes) -> bytes:
        """Send a request frame and return the response frame.

        Retries on drops and on corruption detected by the peer or by
        the caller's decode; raises :class:`IpmiTransportError` after
        ``max_retries`` failures (the DCM marks the node unreachable).
        """
        try:
            endpoint = self._endpoints[address]
        except KeyError:
            raise IpmiTransportError(f"no endpoint at {address}") from None
        if endpoint.handler is None:
            raise IpmiTransportError(f"endpoint {address} has no handler")
        last_error = "no attempt made"
        for attempt in range(self._max_retries + 1):
            if attempt:
                self.stats.retries += 1
            self.stats.sent += 1
            delivered = self._one_way(frame)
            if delivered is None:
                last_error = "request dropped"
                continue
            try:
                IpmiMessage.decode(delivered)
            except Exception as exc:  # checksum failure at the BMC
                last_error = f"request corrupted in flight: {exc}"
                continue
            response = endpoint.handler(delivered)
            returned = self._one_way(response)
            if returned is None:
                last_error = "response dropped"
                continue
            try:
                IpmiResponse.decode(returned)
            except Exception as exc:
                last_error = f"response corrupted in flight: {exc}"
                continue
            self.stats.delivered += 1
            return returned
        raise IpmiTransportError(
            f"request to {address} failed after {self._max_retries + 1} attempts: "
            f"{last_error}"
        )
