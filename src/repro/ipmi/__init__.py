"""Simulated IPMI/DCMI management plane.

Section II-A: "the Platform Controller Hub (PCH) has management engine
firmware that, using the industry standard Intelligent Platform
Management Interface (IPMI), controls the platform's power and thermal
capabilities via the DCM.  In turn, the DCM connects to the platform's
Baseboard Management Controllers (BMC) ... Because a BMC is connected
to its own Network Interface Controller (NIC), this is accomplished
out-of-band, i.e., without going through the operating system."

This package rebuilds that plumbing: wire-format messages with IPMI
checksums (:mod:`.messages`), DCMI power-management commands
(:mod:`.commands`), a session layer (:mod:`.session`), and a lossy
out-of-band LAN transport (:mod:`.transport`).
"""

from .messages import (
    IpmiMessage,
    IpmiResponse,
    NetFn,
    CompletionCode,
    checksum8,
)
from .commands import (
    DcmiCommand,
    GetPowerReadingRequest,
    GetPowerReadingResponse,
    SetPowerLimitRequest,
    GetPowerLimitRequest,
    PowerLimitResponse,
    ActivatePowerLimitRequest,
    CorrectionAction,
)
from .session import IpmiSession
from .transport import LanTransport, TransportEndpoint

__all__ = [
    "IpmiMessage",
    "IpmiResponse",
    "NetFn",
    "CompletionCode",
    "checksum8",
    "DcmiCommand",
    "GetPowerReadingRequest",
    "GetPowerReadingResponse",
    "SetPowerLimitRequest",
    "GetPowerLimitRequest",
    "PowerLimitResponse",
    "ActivatePowerLimitRequest",
    "CorrectionAction",
    "IpmiSession",
    "LanTransport",
    "TransportEndpoint",
]
