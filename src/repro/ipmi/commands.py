"""DCMI power-management commands.

The Data Center Manageability Interface (DCMI) extension is how Intel
DCM talks power to a Node Manager BMC: *Get Power Reading*, *Set Power
Limit*, *Get Power Limit*, and *Activate/Deactivate Power Limit*.  Each
command here encodes to / decodes from the payload bytes of an
:class:`~repro.ipmi.messages.IpmiMessage` on the group-extension NetFn.

Field layouts follow the DCMI 1.5 specification closely enough that the
byte-level tests can check real invariants (little-endian watt fields,
the 0xDC group extension identifier, correction-action codes) without
pretending to be a certified implementation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

from ..errors import IpmiError
from .messages import DCMI_GROUP_EXT_ID, IpmiMessage, NetFn

__all__ = [
    "DcmiCommand",
    "CorrectionAction",
    "GetPowerReadingRequest",
    "GetPowerReadingResponse",
    "SetPowerLimitRequest",
    "GetPowerLimitRequest",
    "PowerLimitResponse",
    "ActivatePowerLimitRequest",
]


class DcmiCommand(IntEnum):
    """DCMI command bytes (power-management subset)."""

    GET_POWER_READING = 0x02
    GET_POWER_LIMIT = 0x03
    SET_POWER_LIMIT = 0x04
    ACTIVATE_POWER_LIMIT = 0x05


class CorrectionAction(IntEnum):
    """What the BMC should do when the limit is exceeded.

    ``HARD_POWER_OFF`` exists in DCMI; the reproduction always uses
    ``THROTTLE`` — the paper's BMC "attempts to reduce power consumption
    by changing the P-state of each of its CPUs".
    """

    NO_ACTION = 0x00
    HARD_POWER_OFF = 0x01
    THROTTLE = 0x02
    LOG_ONLY = 0x11


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise IpmiError(message)


@dataclass(frozen=True)
class GetPowerReadingRequest:
    """Ask the BMC for the node's current/average power."""

    #: 0x01 = system power statistics over the sampling period.
    mode: int = 0x01

    def to_payload(self) -> bytes:
        """Serialise to DCMI payload bytes."""
        return bytes([DCMI_GROUP_EXT_ID, self.mode, 0x00, 0x00])

    @classmethod
    def from_payload(cls, payload: bytes) -> "GetPowerReadingRequest":
        """Parse from DCMI payload bytes (validates the group id)."""
        _require(len(payload) >= 2, "power-reading request too short")
        _require(payload[0] == DCMI_GROUP_EXT_ID, "missing DCMI group id")
        return cls(mode=payload[1])

    def to_message(self, rs_addr: int, rq_addr: int, rq_seq: int) -> IpmiMessage:
        """Wrap into an IPMI request frame."""
        return IpmiMessage(
            rs_addr=rs_addr,
            net_fn=int(NetFn.GROUP_EXTENSION),
            rq_addr=rq_addr,
            rq_seq=rq_seq,
            cmd=int(DcmiCommand.GET_POWER_READING),
            data=self.to_payload(),
        )


@dataclass(frozen=True)
class GetPowerReadingResponse:
    """Power statistics over the BMC's sampling window (whole Watts)."""

    current_w: int
    minimum_w: int
    maximum_w: int
    average_w: int
    timestamp_s: int = 0

    def __post_init__(self) -> None:
        for name in ("current_w", "minimum_w", "maximum_w", "average_w"):
            v = getattr(self, name)
            _require(0 <= v <= 0xFFFF, f"{name} out of the 16-bit DCMI range")

    def to_payload(self) -> bytes:
        """Serialise to DCMI payload bytes."""
        return bytes([DCMI_GROUP_EXT_ID]) + struct.pack(
            "<HHHHI",
            self.current_w,
            self.minimum_w,
            self.maximum_w,
            self.average_w,
            self.timestamp_s,
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "GetPowerReadingResponse":
        """Parse from DCMI payload bytes (validates the group id)."""
        _require(len(payload) >= 13, "power-reading response too short")
        _require(payload[0] == DCMI_GROUP_EXT_ID, "missing DCMI group id")
        cur, mn, mx, avg, ts = struct.unpack("<HHHHI", payload[1:13])
        return cls(current_w=cur, minimum_w=mn, maximum_w=mx, average_w=avg, timestamp_s=ts)


@dataclass(frozen=True)
class SetPowerLimitRequest:
    """Program a power cap into the BMC."""

    limit_w: int
    correction_action: CorrectionAction = CorrectionAction.THROTTLE
    #: How long the limit may be exceeded before the action (ms).
    correction_time_ms: int = 1000
    #: Statistics sampling period the limit is evaluated over (s).
    sampling_period_s: int = 1

    def __post_init__(self) -> None:
        _require(0 < self.limit_w <= 0xFFFF, "limit must be a positive 16-bit watt value")
        _require(self.correction_time_ms > 0, "correction time must be positive")
        _require(self.sampling_period_s > 0, "sampling period must be positive")

    def to_payload(self) -> bytes:
        """Serialise to DCMI payload bytes."""
        return bytes([DCMI_GROUP_EXT_ID, 0x00, 0x00, 0x00]) + struct.pack(
            "<BIHxxH",
            int(self.correction_action),
            self.correction_time_ms,
            self.limit_w,
            self.sampling_period_s,
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "SetPowerLimitRequest":
        """Parse from DCMI payload bytes (validates the group id)."""
        _require(len(payload) >= 15, "set-power-limit request too short")
        _require(payload[0] == DCMI_GROUP_EXT_ID, "missing DCMI group id")
        action, corr_ms, limit, period = struct.unpack("<BIHxxH", payload[4:15])
        return cls(
            limit_w=limit,
            correction_action=CorrectionAction(action),
            correction_time_ms=corr_ms,
            sampling_period_s=period,
        )

    def to_message(self, rs_addr: int, rq_addr: int, rq_seq: int) -> IpmiMessage:
        """Wrap into an IPMI request frame."""
        return IpmiMessage(
            rs_addr=rs_addr,
            net_fn=int(NetFn.GROUP_EXTENSION),
            rq_addr=rq_addr,
            rq_seq=rq_seq,
            cmd=int(DcmiCommand.SET_POWER_LIMIT),
            data=self.to_payload(),
        )


@dataclass(frozen=True)
class GetPowerLimitRequest:
    """Read back the programmed cap."""

    def to_payload(self) -> bytes:
        """Serialise to DCMI payload bytes."""
        return bytes([DCMI_GROUP_EXT_ID, 0x00, 0x00])

    @classmethod
    def from_payload(cls, payload: bytes) -> "GetPowerLimitRequest":
        """Parse from DCMI payload bytes (validates the group id)."""
        _require(len(payload) >= 1, "get-power-limit request too short")
        _require(payload[0] == DCMI_GROUP_EXT_ID, "missing DCMI group id")
        return cls()

    def to_message(self, rs_addr: int, rq_addr: int, rq_seq: int) -> IpmiMessage:
        """Wrap into an IPMI request frame."""
        return IpmiMessage(
            rs_addr=rs_addr,
            net_fn=int(NetFn.GROUP_EXTENSION),
            rq_addr=rq_addr,
            rq_seq=rq_seq,
            cmd=int(DcmiCommand.GET_POWER_LIMIT),
            data=self.to_payload(),
        )


@dataclass(frozen=True)
class PowerLimitResponse:
    """The BMC's view of its power limit."""

    limit_w: int
    active: bool
    correction_action: CorrectionAction = CorrectionAction.THROTTLE
    correction_time_ms: int = 1000
    sampling_period_s: int = 1

    def to_payload(self) -> bytes:
        """Serialise to DCMI payload bytes."""
        return bytes([DCMI_GROUP_EXT_ID, 0x01 if self.active else 0x00]) + struct.pack(
            "<BIHxxH",
            int(self.correction_action),
            self.correction_time_ms,
            self.limit_w,
            self.sampling_period_s,
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "PowerLimitResponse":
        """Parse from DCMI payload bytes (validates the group id)."""
        _require(len(payload) >= 13, "power-limit response too short")
        _require(payload[0] == DCMI_GROUP_EXT_ID, "missing DCMI group id")
        action, corr_ms, limit, period = struct.unpack("<BIHxxH", payload[2:13])
        return cls(
            limit_w=limit,
            active=bool(payload[1]),
            correction_action=CorrectionAction(action),
            correction_time_ms=corr_ms,
            sampling_period_s=period,
        )


@dataclass(frozen=True)
class ActivatePowerLimitRequest:
    """Activate or deactivate the programmed cap."""

    activate: bool

    def to_payload(self) -> bytes:
        """Serialise to DCMI payload bytes."""
        return bytes([DCMI_GROUP_EXT_ID, 0x01 if self.activate else 0x00, 0x00, 0x00])

    @classmethod
    def from_payload(cls, payload: bytes) -> "ActivatePowerLimitRequest":
        """Parse from DCMI payload bytes (validates the group id)."""
        _require(len(payload) >= 2, "activate request too short")
        _require(payload[0] == DCMI_GROUP_EXT_ID, "missing DCMI group id")
        return cls(activate=bool(payload[1]))

    def to_message(self, rs_addr: int, rq_addr: int, rq_seq: int) -> IpmiMessage:
        """Wrap into an IPMI request frame."""
        return IpmiMessage(
            rs_addr=rs_addr,
            net_fn=int(NetFn.GROUP_EXTENSION),
            rq_addr=rq_addr,
            rq_seq=rq_seq,
            cmd=int(DcmiCommand.ACTIVATE_POWER_LIMIT),
            data=self.to_payload(),
        )
