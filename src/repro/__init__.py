"""repro — reproduction of McCartney, Teller & Arunagiri (ICPPW 2012),
"Evaluation of Core Performance when the Node is Power Capped using
Intel(R) Data Center Manager".

The paper is a hardware measurement study; this library rebuilds the
whole apparatus in simulation (see DESIGN.md for the substitution map):

- a Sandy Bridge-like node with P/C-states, a set-associative cache and
  TLB hierarchy, a CMOS power model, and a thermal loop (:mod:`.arch`,
  :mod:`.mem`, :mod:`.power`);
- the management plane: BMC cap enforcement with P-state dithering and
  a beyond-DVFS escalation ladder, reached over a simulated IPMI/DCMI
  out-of-band LAN by a Data Center Manager (:mod:`.bmc`, :mod:`.ipmi`,
  :mod:`.dcm`);
- the two Army workloads as real algorithms — SAR back-projection with
  recursive sidelobe minimisation, and simulated-annealing stereo
  matching — plus the Hennessy-Patterson stride microbenchmark
  (:mod:`.workloads`);
- PAPI-style counters and the full experiment methodology that
  regenerates every table and figure (:mod:`.perf`, :mod:`.core`).

Quickstart
----------
>>> from repro import NodeRunner, StereoMatchingWorkload
>>> runner = NodeRunner(slice_accesses=60_000)
>>> baseline = runner.run(StereoMatchingWorkload())
>>> capped = runner.run(StereoMatchingWorkload(), cap_w=140.0)
>>> capped.execution_s > baseline.execution_s
True
"""

from .config import (
    NodeConfig,
    sandy_bridge_config,
    PAPER_POWER_CAPS_W,
    PAPER_IDLE_POWER_RANGE_W,
)
from .errors import (
    ReproError,
    ConfigError,
    SimulationError,
    CapInfeasibleError,
    IpmiError,
    PolicyError,
    WorkloadError,
)
from .rng import RngStreams, DEFAULT_SEED
from .arch import Node, PStateTable
from .core import (
    MultiCoreRunner,
    TechniqueDetector,
    PhasedRunner,
    CapImpactPredictor,
    CapRegime,
    NodeRunner,
    PowerCapExperiment,
    ExperimentResult,
    RunResult,
    AveragedResult,
    characterize_amenability,
    AmenabilityReport,
    render_table1,
    render_table2,
    figure1_series,
    figure2_series,
)
from .dcm import DataCenterManager, NodeGroup, StaticCapPolicy
from .fleet import (
    FleetEngine,
    FleetTopology,
    NodeClass,
    run_parity,
)
from .perf import PapiEvent, PapiSession, CounterBank
from .power import PowerBudget, BATTERY, GENERATOR
from .workloads import (
    SireRsmWorkload,
    StereoMatchingWorkload,
    StrideBenchmark,
    BurstyWorkload,
    PhaseSpec,
    MachineUnderTest,
)

__version__ = "1.0.0"

__all__ = [
    "NodeConfig",
    "sandy_bridge_config",
    "PAPER_POWER_CAPS_W",
    "PAPER_IDLE_POWER_RANGE_W",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "CapInfeasibleError",
    "IpmiError",
    "PolicyError",
    "WorkloadError",
    "RngStreams",
    "DEFAULT_SEED",
    "Node",
    "PStateTable",
    "NodeRunner",
    "PowerCapExperiment",
    "ExperimentResult",
    "RunResult",
    "AveragedResult",
    "characterize_amenability",
    "AmenabilityReport",
    "render_table1",
    "render_table2",
    "figure1_series",
    "figure2_series",
    "DataCenterManager",
    "NodeGroup",
    "StaticCapPolicy",
    "FleetEngine",
    "FleetTopology",
    "NodeClass",
    "run_parity",
    "PapiEvent",
    "PapiSession",
    "CounterBank",
    "PowerBudget",
    "BATTERY",
    "GENERATOR",
    "SireRsmWorkload",
    "StereoMatchingWorkload",
    "StrideBenchmark",
    "BurstyWorkload",
    "PhaseSpec",
    "MachineUnderTest",
    "MultiCoreRunner",
    "TechniqueDetector",
    "PhasedRunner",
    "CapImpactPredictor",
    "CapRegime",
    "__version__",
]
