"""Node power modelling: CMOS power equation, metering, energy, budgets.

The dynamic-power equation is the one Section II-B quotes from Rabaey,
Chandrakasan & Nikolic: ``P_dyn = C x f x V^2``; static power is
leakage, "related to, among other things, the heat of the processor".
"""

from .model import NodePowerModel, PowerBreakdown, OperatingPoint
from .meter import WattsUpMeter, MeterReading
from .energy import EnergyAccumulator
from .budget import PowerBudget, BudgetScenario, GENERATOR, BATTERY

__all__ = [
    "NodePowerModel",
    "PowerBreakdown",
    "OperatingPoint",
    "WattsUpMeter",
    "MeterReading",
    "EnergyAccumulator",
    "PowerBudget",
    "BudgetScenario",
    "GENERATOR",
    "BATTERY",
]
