"""Watts Up!-style wall power meter.

"We captured the average power consumption of the platform using a
Watts Up! meter" (Section III).  The simulated meter samples the node's
ground-truth power on a fixed period, adds Gaussian sensor noise,
quantises to the meter's resolution, and keeps the sample log from
which experiment averages are computed — the same pipeline that
produced the paper's "Average Node Power Consumption" columns.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Tuple

import numpy as np

from ..config import MeterConfig
from ..errors import SimulationError
from ..units import require_non_negative

__all__ = ["WattsUpMeter", "MeterReading"]


class MeterReading(NamedTuple):
    """One meter sample.

    A ``NamedTuple`` rather than a frozen dataclass: a steady-state
    fast-forward materialises thousands of grid samples in one call,
    and tuple construction is several times cheaper while keeping the
    field API, immutability, and value equality unchanged.
    """

    time_s: float
    power_w: float


class WattsUpMeter:
    """Sampling power meter attached to the node's wall plug."""

    def __init__(
        self,
        config: MeterConfig,
        rng: np.random.Generator,
    ) -> None:
        self._cfg = config
        self._rng = rng
        # Parallel lists rather than a list of MeterReading: the hot
        # paths extend these at C speed from ``tolist()`` output, and
        # reading objects materialise only when ``readings`` is asked
        # for (rarely — once per run at most).
        self._times: List[float] = []
        self._powers: List[float] = []
        self._next_sample_s = 0.0
        self._energy_j = 0.0

    @property
    def config(self) -> MeterConfig:
        """The meter's configuration."""
        return self._cfg

    @property
    def readings(self) -> List[MeterReading]:
        """All samples taken so far."""
        return [
            MeterReading(t, p)
            for t, p in zip(self._times, self._powers)
        ]

    @property
    def sample_count(self) -> int:
        """How many samples the log holds (cheaper than ``readings``)."""
        return len(self._times)

    @property
    def energy_j(self) -> float:
        """Energy integrated from the (noiseless) power trace."""
        return self._energy_j

    @property
    def next_sample_s(self) -> float:
        """The next sampling-grid instant (block-step kernel support)."""
        return self._next_sample_s

    def sample_now(self, time_s: float, true_power_w: float) -> MeterReading:
        """Take one sample immediately (noise + quantisation applied)."""
        noisy = true_power_w + float(self._rng.normal(0.0, self._cfg.noise_sigma_w))
        res = self._cfg.resolution_w
        quantised = round(noisy / res) * res
        reading = MeterReading(time_s=float(time_s), power_w=float(max(0.0, quantised)))
        self._times.append(reading.time_s)
        self._powers.append(reading.power_w)
        return reading

    def advance(
        self, start_s: float, duration_s: float, power_of_time: Callable[[float], float]
    ) -> None:
        """Advance simulated time, sampling on the meter's grid.

        ``power_of_time`` returns the true node power at an absolute
        simulated time; it is evaluated at each sample instant in
        ``[start_s, start_s + duration_s)`` that falls on the sampling
        grid, and once at the interval midpoint for energy integration.

        A steady-state fast-forward arrives as one long slice; every
        grid instant inside it is still sampled (with one vectorised
        noise draw — the Generator's stream is identical to per-sample
        scalar draws, so the log is bit-for-bit the same as stepping
        through the slice quantum by quantum), leaving no gap wider
        than the sampling period anywhere in the log.
        """
        duration_s = require_non_negative(duration_s, "duration_s")
        if duration_s == 0.0:
            return
        end_s = start_s + duration_s
        times = []
        while self._next_sample_s < end_s:
            t = self._next_sample_s
            if t >= start_s:
                times.append(t)
            self._next_sample_s += self._cfg.sample_period_s
        if times:
            noise = self._rng.normal(
                0.0, self._cfg.noise_sigma_w, size=len(times)
            )
            res = self._cfg.resolution_w
            for t, n in zip(times, noise):
                quantised = round((power_of_time(t) + float(n)) / res) * res
                self._times.append(float(t))
                self._powers.append(float(max(0.0, quantised)))
        # Midpoint rule for the energy integral of this slice.
        self._energy_j += power_of_time(start_s + duration_s / 2.0) * duration_s

    def advance_const(
        self, start_s: float, duration_s: float, power_w: float
    ) -> None:
        """:meth:`advance` for a constant-power slice (the runner's case).

        Same grid walk, same RNG consumption, same per-sample quantise/
        clamp arithmetic as :meth:`advance` with a constant
        ``power_of_time`` — but the quantisation chain is vectorised
        (``round`` is round-half-even in both numpy and Python, and the
        integer-by-resolution product is exact either way), which is
        what makes the fast-forward tail's thousands of samples cheap.
        """
        duration_s = require_non_negative(duration_s, "duration_s")
        if duration_s == 0.0:
            return
        end_s = start_s + duration_s
        period = self._cfg.sample_period_s
        nxt = self._next_sample_s
        times = []
        while nxt < end_s:
            if nxt >= start_s:
                times.append(nxt)
            nxt += period
        self._next_sample_s = nxt
        if times:
            noise = self._rng.normal(
                0.0, self._cfg.noise_sigma_w, size=len(times)
            )
            res = self._cfg.resolution_w
            powers = np.maximum(
                0.0, np.round((power_w + noise) / res) * res
            ).tolist()
            self._times.extend(times)
            self._powers.extend(powers)
        self._energy_j += power_w * duration_s

    def advance_block(
        self,
        samples: "List[Tuple[float, float]]",
        next_sample_s: float,
        energy_j: float,
    ) -> None:
        """Commit a block-step kernel's worth of meter activity.

        ``samples`` is the ``(grid time, true power)`` list the kernel
        collected by walking the sampling grid exactly as :meth:`advance`
        does, one quantum at a time; ``next_sample_s`` and ``energy_j``
        are the folded grid cursor and energy integral.  One vectorised
        noise draw covers every sample — the Generator's stream is
        bit-identical to the per-quantum scalar draws (the same property
        the fast-forward path of :meth:`advance` relies on).
        """
        if samples:
            noise = self._rng.normal(
                0.0, self._cfg.noise_sigma_w, size=len(samples)
            )
            res = self._cfg.resolution_w
            if len(samples) < 8:
                # Short blocks carry a handful of samples at most;
                # scalar round/clamp (same half-even rounding, same
                # exact integer-by-resolution product) skips the numpy
                # array round-trip overhead.  The noise draw above is
                # unchanged either way, so the RNG stream is too.
                ap_t = self._times.append
                ap_p = self._powers.append
                for (t, p), nz in zip(samples, noise.tolist()):
                    q = round((p + nz) / res) * res
                    ap_t(t)
                    ap_p(q if q > 0.0 else 0.0)
            else:
                powers = np.maximum(
                    0.0,
                    np.round(
                        (np.array([p for _, p in samples]) + noise) / res
                    ) * res,
                ).tolist()
                self._times.extend(t for t, _ in samples)
                self._powers.extend(powers)
        self._next_sample_s = next_sample_s
        self._energy_j = energy_j

    def average_power_w(self) -> float:
        """Mean of all samples — the paper's reported average power."""
        if not self._powers:
            raise SimulationError("meter has no samples to average")
        return float(np.mean(self._powers))

    def max_power_w(self) -> float:
        """Peak sampled power."""
        if not self._powers:
            raise SimulationError("meter has no samples")
        return float(max(self._powers))

    def max_sample_gap_s(self) -> float:
        """Widest spacing between consecutive samples (gap audit).

        On an uninterrupted run this equals the sampling period even
        across steady-state fast-forwards; anything wider means a
        stretch of the run left no trace in the log.
        """
        if not self._times:
            raise SimulationError("meter has no samples")
        times = self._times
        gap = times[0]
        for prev, cur in zip(times, times[1:]):
            gap = max(gap, cur - prev)
        return float(gap)

    def reset(self) -> None:
        """Clear samples and the energy integral."""
        self._times.clear()
        self._powers.clear()
        self._next_sample_s = 0.0
        self._energy_j = 0.0
