"""Watts Up!-style wall power meter.

"We captured the average power consumption of the platform using a
Watts Up! meter" (Section III).  The simulated meter samples the node's
ground-truth power on a fixed period, adds Gaussian sensor noise,
quantises to the meter's resolution, and keeps the sample log from
which experiment averages are computed — the same pipeline that
produced the paper's "Average Node Power Consumption" columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..config import MeterConfig
from ..errors import SimulationError
from ..units import require_non_negative

__all__ = ["WattsUpMeter", "MeterReading"]


@dataclass(frozen=True)
class MeterReading:
    """One meter sample."""

    time_s: float
    power_w: float


class WattsUpMeter:
    """Sampling power meter attached to the node's wall plug."""

    def __init__(
        self,
        config: MeterConfig,
        rng: np.random.Generator,
    ) -> None:
        self._cfg = config
        self._rng = rng
        self._readings: List[MeterReading] = []
        self._next_sample_s = 0.0
        self._energy_j = 0.0

    @property
    def config(self) -> MeterConfig:
        """The meter's configuration."""
        return self._cfg

    @property
    def readings(self) -> List[MeterReading]:
        """All samples taken so far."""
        return list(self._readings)

    @property
    def energy_j(self) -> float:
        """Energy integrated from the (noiseless) power trace."""
        return self._energy_j

    def sample_now(self, time_s: float, true_power_w: float) -> MeterReading:
        """Take one sample immediately (noise + quantisation applied)."""
        noisy = true_power_w + float(self._rng.normal(0.0, self._cfg.noise_sigma_w))
        res = self._cfg.resolution_w
        quantised = round(noisy / res) * res
        reading = MeterReading(time_s=float(time_s), power_w=float(max(0.0, quantised)))
        self._readings.append(reading)
        return reading

    def advance(
        self, start_s: float, duration_s: float, power_of_time: Callable[[float], float]
    ) -> None:
        """Advance simulated time, sampling on the meter's grid.

        ``power_of_time`` returns the true node power at an absolute
        simulated time; it is evaluated at each sample instant in
        ``[start_s, start_s + duration_s)`` that falls on the sampling
        grid, and once at the interval midpoint for energy integration.

        A steady-state fast-forward arrives as one long slice; every
        grid instant inside it is still sampled (with one vectorised
        noise draw — the Generator's stream is identical to per-sample
        scalar draws, so the log is bit-for-bit the same as stepping
        through the slice quantum by quantum), leaving no gap wider
        than the sampling period anywhere in the log.
        """
        duration_s = require_non_negative(duration_s, "duration_s")
        if duration_s == 0.0:
            return
        end_s = start_s + duration_s
        times = []
        while self._next_sample_s < end_s:
            t = self._next_sample_s
            if t >= start_s:
                times.append(t)
            self._next_sample_s += self._cfg.sample_period_s
        if times:
            noise = self._rng.normal(
                0.0, self._cfg.noise_sigma_w, size=len(times)
            )
            res = self._cfg.resolution_w
            for t, n in zip(times, noise):
                quantised = round((power_of_time(t) + float(n)) / res) * res
                self._readings.append(
                    MeterReading(time_s=float(t), power_w=float(max(0.0, quantised)))
                )
        # Midpoint rule for the energy integral of this slice.
        self._energy_j += power_of_time(start_s + duration_s / 2.0) * duration_s

    def average_power_w(self) -> float:
        """Mean of all samples — the paper's reported average power."""
        if not self._readings:
            raise SimulationError("meter has no samples to average")
        return float(np.mean([r.power_w for r in self._readings]))

    def max_power_w(self) -> float:
        """Peak sampled power."""
        if not self._readings:
            raise SimulationError("meter has no samples")
        return float(max(r.power_w for r in self._readings))

    def max_sample_gap_s(self) -> float:
        """Widest spacing between consecutive samples (gap audit).

        On an uninterrupted run this equals the sampling period even
        across steady-state fast-forwards; anything wider means a
        stretch of the run left no trace in the log.
        """
        if not self._readings:
            raise SimulationError("meter has no samples")
        gap = self._readings[0].time_s
        for prev, cur in zip(self._readings, self._readings[1:]):
            gap = max(gap, cur.time_s - prev.time_s)
        return float(gap)

    def reset(self) -> None:
        """Clear samples and the energy integral."""
        self._readings.clear()
        self._next_sample_s = 0.0
        self._energy_j = 0.0
