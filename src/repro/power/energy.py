"""Energy accounting.

The paper computes energy as ``power x execution time`` and observes
that "time-to-solution and energy consumption increase as the power cap
decreases", with the minimum energy at caps at or above the uncapped
draw.  :class:`EnergyAccumulator` integrates piecewise-constant power
over simulation quanta and exposes the computed-energy figure the
paper's Table II reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import SimulationError
from ..units import require_non_negative

__all__ = ["EnergyAccumulator"]


@dataclass
class EnergyAccumulator:
    """Piecewise-constant energy integrator with a segment log."""

    _energy_j: float = 0.0
    _elapsed_s: float = 0.0
    _segments: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, power_w: float, duration_s: float) -> None:
        """Account one constant-power segment."""
        power_w = require_non_negative(power_w, "power_w")
        duration_s = require_non_negative(duration_s, "duration_s")
        self._energy_j += power_w * duration_s
        self._elapsed_s += duration_s
        self._segments.append((power_w, duration_s))

    def add_block(
        self,
        segments: List[Tuple[float, float]],
        energy_j: float,
        elapsed_s: float,
    ) -> None:
        """Commit segments pre-folded by the block-step kernel.

        ``energy_j`` / ``elapsed_s`` must be the sequential left-folds
        of ``segments`` continued from the current totals (the same
        ``+=`` chain :meth:`add` performs), and every power/duration
        non-negative — the kernel guarantees both.
        """
        self._segments.extend(segments)
        self._energy_j = energy_j
        self._elapsed_s = elapsed_s

    @property
    def energy_j(self) -> float:
        """Total energy so far (Joules)."""
        return self._energy_j

    @property
    def elapsed_s(self) -> float:
        """Total time so far (seconds)."""
        return self._elapsed_s

    @property
    def segments(self) -> List[Tuple[float, float]]:
        """The (power, duration) segments accounted so far."""
        return list(self._segments)

    def average_power_w(self) -> float:
        """Time-weighted average power (energy / elapsed)."""
        if self._elapsed_s <= 0:
            raise SimulationError("no time accumulated")
        return self._energy_j / self._elapsed_s

    def merge(self, other: "EnergyAccumulator") -> "EnergyAccumulator":
        """Concatenate two accountings into a new accumulator."""
        out = EnergyAccumulator()
        for p, d in self._segments + other._segments:
            out.add(p, d)
        return out

    def reset(self) -> None:
        """Zero everything."""
        self._energy_j = 0.0
        self._elapsed_s = 0.0
        self._segments.clear()
