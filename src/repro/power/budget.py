"""Fielded-platform power budgets.

Section I motivates the study with fielded platforms — UAVs, Humvees,
manned aircraft, ground stations — "where power is produced from a
heavy fuel generator" and "each device is given a power budget".
Section IV-C adds the battery discussion: capping drains reserves more
slowly per unit time but for longer, and "power capping has no value
when the workload power consumption is constant ... and lower than the
capacity of the power supply".

:class:`PowerBudget` captures a device's allocation and answers the
questions the paper says an integrator must ask: does a cap fit the
allocation, what delay does it imply, and — for batteries — how much
battery life a capped run consumes versus an uncapped one.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigError
from ..units import require_non_negative, require_positive, watt_hours_to_joules

__all__ = ["BudgetScenario", "PowerBudget", "GENERATOR", "BATTERY"]


class BudgetScenario(Enum):
    """How the platform is powered."""

    GENERATOR = "generator"
    BATTERY = "battery"


GENERATOR = BudgetScenario.GENERATOR
BATTERY = BudgetScenario.BATTERY


@dataclass(frozen=True)
class PowerBudget:
    """A device's power allocation on a fielded platform.

    Parameters
    ----------
    allocation_w:
        The payload-processing power allocation (Watts).
    scenario:
        Generator-powered (power is the constraint) or battery-powered
        (energy is the constraint).
    battery_wh:
        Battery capacity; required for :data:`BATTERY` scenarios.
    """

    allocation_w: float
    scenario: BudgetScenario = GENERATOR
    battery_wh: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.allocation_w, "allocation_w")
        if self.scenario is BATTERY and self.battery_wh <= 0:
            raise ConfigError("battery scenario requires a positive battery_wh")

    def admits_cap(self, cap_w: float) -> bool:
        """Whether a node cap fits inside the allocation."""
        return require_positive(cap_w, "cap_w") <= self.allocation_w

    def headroom_w(self, draw_w: float) -> float:
        """Allocation left above a measured draw (may be negative)."""
        return self.allocation_w - require_non_negative(draw_w, "draw_w")

    def battery_life_s(self, draw_w: float) -> float:
        """Runtime until the battery is exhausted at a constant draw."""
        if self.scenario is not BATTERY:
            raise ConfigError("battery_life_s only applies to battery scenarios")
        draw_w = require_positive(draw_w, "draw_w")
        return watt_hours_to_joules(self.battery_wh) / draw_w

    def battery_fraction_used(self, energy_j: float) -> float:
        """Fraction of the battery a job's energy consumes."""
        if self.scenario is not BATTERY:
            raise ConfigError("battery accounting only applies to battery scenarios")
        return require_non_negative(energy_j, "energy_j") / watt_hours_to_joules(
            self.battery_wh
        )

    def deadline_met(self, execution_s: float, deadline_s: float) -> bool:
        """The soft real-time check from the paper's motivation.

        "In battlefield situations where there are soft real-time
        deadlines for data processing ... a specific range of delay in
        time-to-solution ... are tolerable."
        """
        return require_non_negative(execution_s, "execution_s") <= require_positive(
            deadline_s, "deadline_s"
        )
