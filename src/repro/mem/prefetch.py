"""Hardware stream prefetcher (optional hierarchy add-on).

Table II's most puzzling numbers are SIRE/RSM's L2 misses: 6x10^11 —
two hundred times its L1 miss count, which is impossible for *demand*
misses.  On Sandy Bridge the L2 counters include **hardware prefetcher
traffic**: the L2 streamer detects ascending line sequences and issues
prefetches far ahead, each of which counts as an L2 access/miss.  For a
streaming workload the prefetcher fires on every line, multiplying the
apparent L2 "miss" count without any demand-side change.

:class:`StreamPrefetcher` models that: it watches the demand miss
stream for ascending line runs and, once a stream is confirmed, issues
``degree`` prefetches ahead of it.  The hierarchy accounts prefetch
traffic separately from demand misses, so the reproduction can report
both the *demand* numbers (our Table II) and the *counter-visible*
numbers (the paper's inflated ones).

The prefetcher is off by default — the paper-calibrated rates are
demand-only — and enabled explicitly by the prefetcher ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError

__all__ = ["StreamPrefetcher", "PrefetchStats"]


@dataclass
class PrefetchStats:
    """Prefetcher activity counters."""

    #: Streams detected (an ascending run confirmed).
    streams_detected: int = 0
    #: Prefetch requests issued toward L2/L3.
    issued: int = 0
    #: Demand accesses that hit a prefetched line (usefulness proxy).
    useful_hits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.streams_detected = self.issued = self.useful_hits = 0

    @property
    def accuracy(self) -> float:
        """Useful hits per issued prefetch (0 when idle)."""
        return self.useful_hits / self.issued if self.issued else 0.0


class StreamPrefetcher:
    """An L2-streamer-style ascending-run prefetcher.

    Parameters
    ----------
    degree:
        Lines fetched ahead of a confirmed stream per trigger.
    table_size:
        How many concurrent streams the detector tracks (LRU).
    confirm:
        Consecutive ascending misses needed to confirm a stream.
    """

    def __init__(self, degree: int = 4, table_size: int = 16, confirm: int = 2) -> None:
        if degree < 1 or table_size < 1 or confirm < 1:
            raise ConfigError("prefetcher parameters must be positive")
        self.degree = degree
        self.table_size = table_size
        self.confirm = confirm
        #: line -> consecutive-hit count; insertion-ordered for LRU.
        self._streams: Dict[int, int] = {}
        #: Lines brought in by prefetch and not yet demanded.
        self._inflight: set[int] = set()
        self.stats = PrefetchStats()

    def observe_demand_miss(self, line: int) -> List[int]:
        """Feed one demand L1-miss line; returns lines to prefetch."""
        to_fetch: List[int] = []
        predecessor = line - 1
        if predecessor in self._streams:
            count = self._streams.pop(predecessor) + 1
            self._streams[line] = count
            if count == self.confirm:
                self.stats.streams_detected += 1
            if count >= self.confirm:
                for ahead in range(1, self.degree + 1):
                    candidate = line + ahead
                    if candidate not in self._inflight:
                        to_fetch.append(candidate)
                        self._inflight.add(candidate)
                self.stats.issued += len(to_fetch)
        else:
            self._streams[line] = 1
            if len(self._streams) > self.table_size:
                # Evict the oldest tracked stream.
                oldest = next(iter(self._streams))
                del self._streams[oldest]
        return to_fetch

    def observe_demand_access(self, line: int) -> None:
        """Feed every demand access so usefulness can be credited."""
        if line in self._inflight:
            self._inflight.discard(line)
            self.stats.useful_hits += 1

    def reset(self) -> None:
        """Forget all streams and inflight lines (counters preserved)."""
        self._streams.clear()
        self._inflight.clear()
