"""Translation lookaside buffer simulator with entry gating.

The paper's Table II shows instruction-TLB misses exploding (up to
+8,481 %) at the two lowest power caps while data-TLB misses stay nearly
flat — strong evidence that the management firmware shrinks the iTLB
reach when it runs out of DVFS headroom.  :class:`Tlb` models a
set-associative TLB whose *effective entry count* can be gated down,
mirroring :class:`~repro.mem.cache.SetAssociativeCache` way gating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import TlbGeometry
from ..errors import ConfigError, SimulationError
from .lru import lru_access

__all__ = ["Tlb", "TlbStats"]


@dataclass
class TlbStats:
    """Access counters for one TLB."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when never touched)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = self.hits = self.misses = 0


class Tlb:
    """Set-associative TLB over virtual page numbers.

    Entry gating reduces the enabled ways uniformly across sets; the
    effective entry count is ``n_sets * enabled_ways``.
    """

    def __init__(self, geometry: TlbGeometry) -> None:
        self._geom = geometry
        self._n_sets = geometry.n_sets
        self._set_mask = self._n_sets - 1
        self._page_shift = geometry.page_bytes.bit_length() - 1
        self._enabled_ways = geometry.ways
        self._sets: list[list[int]] = [[] for _ in range(self._n_sets)]
        self.stats = TlbStats()

    @property
    def geometry(self) -> TlbGeometry:
        """The configured geometry."""
        return self._geom

    @property
    def page_shift(self) -> int:
        """log2 of the page size (address >> page_shift = VPN)."""
        return self._page_shift

    @property
    def enabled_entries(self) -> int:
        """Entries reachable with the current gating."""
        return self._enabled_ways * self._n_sets

    def set_enabled_fraction(self, fraction: float) -> None:
        """Gate the TLB to roughly ``fraction`` of its entries.

        The fraction maps to enabled ways (at least one way per set).
        Gating down drops translations cached in the gated ways.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError("TLB enabled fraction must be in (0, 1]")
        ways = max(1, int(round(self._geom.ways * fraction)))
        if ways < self._enabled_ways:
            for s in self._sets:
                if len(s) > ways:
                    del s[ways:]
        self._enabled_ways = ways

    def access_page(self, vpn: int) -> bool:
        """Look up one virtual page number; returns True on hit."""
        idx = vpn & self._set_mask
        tag = vpn >> (self._n_sets.bit_length() - 1)
        s = self._sets[idx]
        self.stats.accesses += 1
        try:
            pos = s.index(tag)
        except ValueError:
            self.stats.misses += 1
            s.insert(0, tag)
            if len(s) > self._enabled_ways:
                s.pop()
            return False
        self.stats.hits += 1
        if pos:
            s.pop(pos)
            s.insert(0, tag)
        return True

    def access_vpns(self, vpns: np.ndarray) -> np.ndarray:
        """Look up a vector of virtual page numbers.

        Returns the per-access boolean miss mask, bit-identical to
        calling :meth:`access_page` once per element.  Uses the shared
        vectorized kernel (:func:`repro.mem.lru.lru_access`).
        """
        miss = lru_access(
            self._sets,
            vpns,
            self._set_mask,
            self._n_sets.bit_length() - 1,
            self._enabled_ways,
        )
        n = int(vpns.shape[0])
        misses = int(miss.sum())
        self.stats.accesses += n
        self.stats.misses += misses
        self.stats.hits += n - misses
        return miss

    def access_bytes(self, byte_addresses: np.ndarray) -> int:
        """Translate a vector of byte addresses; returns miss count."""
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        return int(self.access_vpns(byte_addresses >> self._page_shift).sum())

    def flush(self) -> None:
        """Drop every cached translation (counters preserved)."""
        for s in self._sets:
            s.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self._geom
        return (
            f"Tlb({g.name}, {self.enabled_entries}/{g.entries} entries, "
            f"{self._n_sets} sets)"
        )
