"""Shared vectorized LRU kernel for the cache and TLB simulators.

The scalar simulators walk one access at a time through Python-list
LRU stacks.  That is exact but slow: the per-access work is dominated
by interpreter overhead, not by the (tiny) LRU bookkeeping.  This
module removes the bulk of that overhead while producing *bit-identical*
hit/miss behaviour:

1. **Vector decomposition** — set indices are computed for the whole
   trace in one NumPy shot instead of per access.
2. **Predecessor-equal elision** — if an access has the same key (line
   address / VPN) as the *previous access to the same set*, it is
   necessarily an MRU hit and leaves the LRU state unchanged, so it can
   be answered without touching the stacks at all.  Because two equal
   keys always map to the same set, the elidable accesses are found
   with a single stable argsort by set index followed by one vector
   compare of neighbouring keys.  Real traces have heavy short-range
   reuse, so this removes a large fraction of the scalar work.
3. **Tight residual loop** — the surviving accesses run through the
   same list-based LRU update the scalar path uses, in original program
   order, writing a per-access miss mask.

The elision is exact, not approximate: eliding an access answers it
*and* applies its (null) state transition, so the residual loop sees
exactly the state the scalar simulator would have had.  Elision is
performed only within one kernel call; state carries across calls
through ``sets``, so splitting a trace into arbitrary batches cannot
change the result.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["lru_access"]


def lru_access(
    sets: list[list[int]],
    keys: np.ndarray,
    set_mask: int,
    tag_shift: int,
    enabled_ways: int,
) -> np.ndarray:
    """Run a vector of keys through list-based LRU sets.

    Parameters
    ----------
    sets:
        Per-set tag lists, most-recently-used first.  Mutated in place,
        exactly as the scalar simulators would.
    keys:
        One-dimensional integer array of line addresses (caches) or
        virtual page numbers (TLBs).
    set_mask:
        ``n_sets - 1`` (set count is a power of two).
    tag_shift:
        ``n_sets.bit_length() - 1``; a key's tag is ``key >> tag_shift``.
    enabled_ways:
        Current associativity (gated ways excluded).

    Returns the boolean miss mask aligned with ``keys``.
    """
    if keys.ndim != 1:
        raise SimulationError("address trace must be one-dimensional")
    n = keys.shape[0]
    miss = np.zeros(n, dtype=bool)
    if n == 0:
        return miss
    set_idx = keys & set_mask
    # Stable sort groups each set's accesses while preserving their
    # program order; equal neighbouring keys within a group are repeats
    # of the set's current MRU entry and need no simulation.
    order = np.argsort(set_idx, kind="stable")
    sorted_keys = keys[order]
    fresh = np.empty(n, dtype=bool)
    fresh[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=fresh[1:])
    keep = np.empty(n, dtype=bool)
    keep[order] = fresh
    kept_pos = np.flatnonzero(keep)

    kept_keys = keys[kept_pos]
    kept_sets = set_idx[kept_pos].tolist()
    kept_tags = (kept_keys >> tag_shift).tolist()
    miss_positions: list[int] = []
    append = miss_positions.append
    for pos, sidx, tag in zip(kept_pos.tolist(), kept_sets, kept_tags):
        s = sets[sidx]
        if tag in s:
            i = s.index(tag)
            if i:
                s.pop(i)
                s.insert(0, tag)
        else:
            append(pos)
            s.insert(0, tag)
            if len(s) > enabled_ways:
                s.pop()
    if miss_positions:
        miss[np.asarray(miss_positions, dtype=np.intp)] = True
    return miss
