"""Simulated memory hierarchy: caches, TLBs, DRAM, reconfiguration.

The paper's platform has per-core 32 KB L1D/L1I and 256 KB L2 caches, a
20 MB shared L3, and 64 GB of RAM; its Figure 3 stride microbenchmark
infers the level latencies we use.  This package simulates that
hierarchy at cache-line granularity, including the *dynamic cache
reconfiguration* (way gating, TLB entry gating, DRAM gating) that the
paper concludes is applied below the DVFS floor.
"""

from .cache import SetAssociativeCache, CacheStats
from .tlb import Tlb, TlbStats
from .dram import Dram
from .hierarchy import MemoryHierarchy, AccessCounts, AccessRates
from .latency import AccessCosts, stall_ns_per_instruction
from .prefetch import StreamPrefetcher, PrefetchStats
from .reconfig import GatingState, ReconfigEngine

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "Tlb",
    "TlbStats",
    "Dram",
    "MemoryHierarchy",
    "AccessCounts",
    "AccessRates",
    "AccessCosts",
    "stall_ns_per_instruction",
    "GatingState",
    "ReconfigEngine",
    "StreamPrefetcher",
    "PrefetchStats",
]
