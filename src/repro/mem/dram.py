"""Main-memory (DRAM) model.

DRAM matters to the reproduction in two ways:

1. **Latency** — the paper's Figure 3 infers a 60 ns main-memory access
   time, which prices every L3 miss; *memory gating* (putting ranks in
   low-power states and waking them on demand) multiplies that latency
   while saving little power, which is one of the sub-floor mechanisms
   Section IV-B points at.
2. **Power** — traffic-proportional active power explains why the
   streaming SIRE/RSM workload draws a few watts more than the
   cache-resident Stereo Matching at the same operating point
   (157 W vs 153 W in Table I).
"""

from __future__ import annotations

from ..config import DramConfig
from ..errors import ConfigError
from ..units import require_non_negative

__all__ = ["Dram"]


class Dram:
    """DRAM latency/power model with a gating multiplier."""

    def __init__(self, config: DramConfig) -> None:
        self._config = config
        self._latency_multiplier = 1.0

    @property
    def config(self) -> DramConfig:
        """The configured DRAM parameters."""
        return self._config

    @property
    def latency_multiplier(self) -> float:
        """Current gating multiplier (1.0 = ungated)."""
        return self._latency_multiplier

    def set_latency_multiplier(self, multiplier: float) -> None:
        """Apply a memory-gating latency multiplier (>= 1)."""
        if multiplier < 1.0:
            raise ConfigError("DRAM latency multiplier must be >= 1")
        self._latency_multiplier = float(multiplier)

    @property
    def access_latency_ns(self) -> float:
        """Effective access latency under the current gating."""
        return self._config.access_latency_ns * self._latency_multiplier

    def traffic_power_w(self, bytes_per_second: float) -> float:
        """Active power from a sustained traffic level.

        Traffic is clamped at the configured sustained bandwidth; the
        background (refresh/standby) power is accounted separately in
        the node's platform floor.
        """
        bps = require_non_negative(bytes_per_second, "bytes_per_second")
        gbs = min(bps / 1e9, self._config.bandwidth_gbs)
        return gbs * self._config.active_w_per_gbs

    def traffic_bytes_per_second(
        self, l3_misses_per_instr: float, instr_per_second: float, line_bytes: int = 64
    ) -> float:
        """Convert an L3 miss rate into DRAM traffic."""
        return (
            require_non_negative(l3_misses_per_instr, "l3_misses_per_instr")
            * require_non_negative(instr_per_second, "instr_per_second")
            * line_bytes
        )
