"""Access-time model of the memory hierarchy.

The per-level costs come straight from what the paper's own stride
microbenchmark infers (Section IV-B / Figure 3):

- L1 data cache access time 1.5 ns, L1 miss penalty 2.0 ns,
- L2 and L3 miss penalties 5.1 ns and 37.1 ns,
- main memory access time 60 ns.

:class:`AccessCosts` resolves those constants against a
:class:`~repro.mem.reconfig.GatingState` — gated (drowsy) cache arrays
multiply their access time, gated DRAM multiplies its latency — and
:func:`stall_ns_per_instruction` turns per-instruction event rates into
the memory-stall term of the core's CPI stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NodeConfig
from ..errors import SimulationError
from .reconfig import GatingState

__all__ = ["AccessCosts", "stall_ns_per_instruction"]


@dataclass(frozen=True)
class AccessCosts:
    """Nanosecond cost of an access *served at* each level.

    ``lX_serve_ns`` is the total time of an access satisfied by level X
    (inner-level traversal included).  ``tlb_walk_ns`` is the page-walk
    cost added on a TLB miss.
    """

    l1_serve_ns: float
    l2_serve_ns: float
    l3_serve_ns: float
    dram_serve_ns: float
    itlb_walk_ns: float
    dtlb_walk_ns: float

    def __post_init__(self) -> None:
        if not (
            0
            < self.l1_serve_ns
            <= self.l2_serve_ns
            <= self.l3_serve_ns
            <= self.dram_serve_ns
        ):
            raise SimulationError(
                "service costs must increase monotonically outward: "
                f"{self.l1_serve_ns}, {self.l2_serve_ns}, "
                f"{self.l3_serve_ns}, {self.dram_serve_ns}"
            )

    @classmethod
    def from_config(
        cls, cfg: NodeConfig, gating: GatingState | None = None
    ) -> "AccessCosts":
        """Resolve costs for a node under a gating state."""
        g = gating or GatingState.ungated()
        cm = g.cache_latency_multiplier
        l1 = cfg.l1d.hit_latency_ns * cm
        l2 = (cfg.l1d.hit_latency_ns + cfg.l1d.miss_penalty_ns) * cm
        l3 = (
            cfg.l1d.hit_latency_ns
            + cfg.l1d.miss_penalty_ns
            + cfg.l2.miss_penalty_ns
        ) * cm
        dram = l3 + cfg.l3.miss_penalty_ns * cm + (
            cfg.dram.access_latency_ns * g.dram_latency_multiplier
            - cfg.dram.access_latency_ns
        )
        # Ungated, dram = l3 + 37.1 ns ~= the paper's ~46-60 ns plateau;
        # gating adds the full extra DRAM wake latency on top.
        walk = cm * cfg.itlb.miss_penalty_ns + 0.5 * (
            cfg.dram.access_latency_ns * (g.dram_latency_multiplier - 1.0)
        )
        dwalk = cm * cfg.dtlb.miss_penalty_ns + 0.5 * (
            cfg.dram.access_latency_ns * (g.dram_latency_multiplier - 1.0)
        )
        return cls(
            l1_serve_ns=l1,
            l2_serve_ns=l2,
            l3_serve_ns=l3,
            dram_serve_ns=dram,
            itlb_walk_ns=walk,
            dtlb_walk_ns=dwalk,
        )

    def serve_ns_for_level(self, level: str) -> float:
        """Cost of an access served at ``level`` ('L1'|'L2'|'L3'|'DRAM')."""
        try:
            return {
                "L1": self.l1_serve_ns,
                "L2": self.l2_serve_ns,
                "L3": self.l3_serve_ns,
                "DRAM": self.dram_serve_ns,
            }[level]
        except KeyError:
            raise SimulationError(f"unknown level {level!r}") from None

    def average_access_ns(
        self,
        accesses: float,
        l1_misses: float,
        l2_misses: float,
        l3_misses: float,
        tlb_misses: float = 0.0,
    ) -> float:
        """Average time per access from hierarchical miss counts.

        ``lX_misses`` are accesses that missed level X (and so were
        served further out); the count served at each level follows by
        subtraction.
        """
        if not accesses >= l1_misses >= l2_misses >= l3_misses >= 0:
            raise SimulationError(
                "miss counts must nest: accesses >= L1 >= L2 >= L3 >= 0"
            )
        served_l1 = accesses - l1_misses
        served_l2 = l1_misses - l2_misses
        served_l3 = l2_misses - l3_misses
        served_dram = l3_misses
        total_ns = (
            served_l1 * self.l1_serve_ns
            + served_l2 * self.l2_serve_ns
            + served_l3 * self.l3_serve_ns
            + served_dram * self.dram_serve_ns
            + tlb_misses * self.dtlb_walk_ns
        )
        return total_ns / accesses if accesses else 0.0


def stall_ns_per_instruction(rates, costs: AccessCosts) -> float:
    """Memory-stall nanoseconds per instruction for the CPI stack.

    ``rates`` is any object exposing per-instruction event rates
    (:class:`~repro.mem.hierarchy.AccessRates`): ``l1d_misses``,
    ``l2_misses``, ``l3_misses``, ``l1i_misses``, ``itlb_misses``,
    ``dtlb_misses``.  L1 *hits* are considered covered by the base CPI
    (they pipeline); every miss pays the incremental cost of the level
    that serves it.
    """
    beyond_l1 = costs.l2_serve_ns - costs.l1_serve_ns
    beyond_l2 = costs.l3_serve_ns - costs.l2_serve_ns
    beyond_l3 = costs.dram_serve_ns - costs.l3_serve_ns
    # Hierarchical: an access that misses L1 pays beyond_l1; if it also
    # misses L2 it additionally pays beyond_l2, and so on.
    stall = (rates.l1d_misses + rates.l1i_misses) * beyond_l1
    stall += rates.l2_misses * beyond_l2
    stall += rates.l3_misses * beyond_l3
    stall += rates.itlb_misses * costs.itlb_walk_ns
    stall += rates.dtlb_misses * costs.dtlb_walk_ns
    return float(stall)
