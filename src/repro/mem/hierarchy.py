"""The composed memory hierarchy of one core plus the shared L3.

Models exactly the paper's platform (Section III): per-core 32 KB L1D,
32 KB L1I and 256 KB unified L2; 20 MB shared L3; data and instruction
TLBs; DRAM behind it all.  Traces of byte addresses are pushed through
the levels with proper nesting (an access only reaches L2 if it missed
L1, and so on), producing the per-level miss counts that feed both the
PAPI-like counters and the CPI-stack timing model.

Data and instruction streams are simulated against their own L1/TLB and
share L2/L3.  Instruction fetches are simulated after the data stream of
the same slice; the instruction working sets of the paper's workloads
are small enough that ordering effects on the shared levels are
negligible (documented approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..config import NodeConfig
from ..errors import SimulationError
from .cache import SetAssociativeCache
from .dram import Dram
from .prefetch import StreamPrefetcher
from .reconfig import GatingState
from .tlb import Tlb

__all__ = ["MemoryHierarchy", "AccessCounts", "AccessRates"]


@dataclass(frozen=True)
class AccessCounts:
    """Event counts from simulating a trace slice."""

    data_accesses: int = 0
    ifetches: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    #: Prefetcher-generated traffic (zero unless a prefetcher is
    #: attached).  On real hardware these are folded into the L2/L3
    #: counters — the paper's anomalous SIRE numbers; we keep them
    #: separate and expose the combined view via properties.
    prefetch_l2_requests: int = 0
    prefetch_l2_misses: int = 0
    prefetch_l3_misses: int = 0

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "AccessCounts":
        """Counts scaled by a factor (used to extrapolate samples)."""
        if factor < 0:
            raise SimulationError("scale factor must be non-negative")
        return AccessCounts(
            **{f.name: int(round(getattr(self, f.name) * factor)) for f in fields(self)}
        )

    @property
    def counter_visible_l2_misses(self) -> int:
        """What a Sandy Bridge L2 counter would show: demand + prefetch."""
        return self.l2_misses + self.prefetch_l2_misses

    @property
    def counter_visible_l3_misses(self) -> int:
        """What the L3 counter would show: demand + prefetch."""
        return self.l3_misses + self.prefetch_l3_misses

    def validate_nesting(self) -> None:
        """Check the hierarchical invariants of the counts."""
        if self.l1d_misses > self.data_accesses:
            raise SimulationError("more L1D misses than data accesses")
        if self.l1i_misses > self.ifetches:
            raise SimulationError("more L1I misses than instruction fetches")
        if self.l2_misses > self.l1d_misses + self.l1i_misses:
            raise SimulationError("more L2 misses than L2 accesses")
        if self.l3_misses > self.l2_misses:
            raise SimulationError("more L3 misses than L3 accesses")
        if self.dtlb_misses > self.data_accesses:
            raise SimulationError("more DTLB misses than data accesses")
        if self.itlb_misses > self.ifetches:
            raise SimulationError("more ITLB misses than fetches")


@dataclass(frozen=True)
class AccessRates:
    """Per-instruction event rates derived from :class:`AccessCounts`."""

    l1d_misses: float
    l1i_misses: float
    l2_misses: float
    l3_misses: float
    itlb_misses: float
    dtlb_misses: float
    data_accesses: float
    ifetches: float

    @classmethod
    def from_counts(cls, counts: AccessCounts, instructions: float) -> "AccessRates":
        """Normalise counts by an instruction total."""
        if instructions <= 0:
            raise SimulationError("instructions must be positive")
        return cls(
            l1d_misses=counts.l1d_misses / instructions,
            l1i_misses=counts.l1i_misses / instructions,
            l2_misses=counts.l2_misses / instructions,
            l3_misses=counts.l3_misses / instructions,
            itlb_misses=counts.itlb_misses / instructions,
            dtlb_misses=counts.dtlb_misses / instructions,
            data_accesses=counts.data_accesses / instructions,
            ifetches=counts.ifetches / instructions,
        )

    def counts_for(self, instructions: float) -> AccessCounts:
        """Extrapolate these rates to a full-run instruction budget."""
        if instructions < 0:
            raise SimulationError("instructions must be non-negative")
        return AccessCounts(
            data_accesses=int(round(self.data_accesses * instructions)),
            ifetches=int(round(self.ifetches * instructions)),
            l1d_misses=int(round(self.l1d_misses * instructions)),
            l1i_misses=int(round(self.l1i_misses * instructions)),
            l2_misses=int(round(self.l2_misses * instructions)),
            l3_misses=int(round(self.l3_misses * instructions)),
            itlb_misses=int(round(self.itlb_misses * instructions)),
            dtlb_misses=int(round(self.dtlb_misses * instructions)),
        )


class MemoryHierarchy:
    """One core's view of the node's memory system.

    An optional :class:`~repro.mem.prefetch.StreamPrefetcher` can be
    attached; it rides the demand-miss stream and generates its own
    L2/L3 traffic, accounted separately in :class:`AccessCounts`.
    """

    def __init__(
        self,
        config: NodeConfig,
        prefetcher: StreamPrefetcher | None = None,
    ) -> None:
        self._config = config
        self.l1d = SetAssociativeCache(config.l1d)
        self.l1i = SetAssociativeCache(config.l1i)
        self.l2 = SetAssociativeCache(config.l2)
        self.l3 = SetAssociativeCache(config.l3)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)
        self.dram = Dram(config.dram)
        self.prefetcher = prefetcher
        self._gating = GatingState.ungated()

    @property
    def config(self) -> NodeConfig:
        """The owning node's configuration."""
        return self._config

    @property
    def gating(self) -> GatingState:
        """The gating state most recently applied."""
        return self._gating

    def set_gating(self, state: GatingState) -> None:
        """Record the applied gating state (set by the reconfig engine)."""
        self._gating = state

    def flush_all(self) -> None:
        """Invalidate every cache and TLB (cold start)."""
        for c in (self.l1d, self.l1i, self.l2, self.l3):
            c.flush()
        self.itlb.flush()
        self.dtlb.flush()

    def reset_stats(self) -> None:
        """Zero every component's counters."""
        for c in (self.l1d, self.l1i, self.l2, self.l3):
            c.stats.reset()
        self.itlb.stats.reset()
        self.dtlb.stats.reset()

    def simulate_data_trace(self, byte_addresses: np.ndarray) -> AccessCounts:
        """Push a data-access trace through DTLB -> L1D -> L2 -> L3.

        Returns the counts generated by *this slice only* (component
        stats accumulate across calls).
        """
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        l1d, l2, l3, dtlb = self.l1d, self.l2, self.l3, self.dtlb
        prefetcher = self.prefetcher
        l1_shift = l1d.line_shift
        page_shift = dtlb.page_shift
        dtlb_misses = 0
        l1_misses = 0
        l2_misses = 0
        l3_misses = 0
        pf_l2_requests = 0
        pf_l2_misses = 0
        pf_l3_misses = 0
        for a in byte_addresses.tolist():
            if not dtlb.access_page(a >> page_shift):
                dtlb_misses += 1
            line = a >> l1_shift
            if prefetcher is not None:
                prefetcher.observe_demand_access(line)
            if l1d.access_line(line):
                continue
            l1_misses += 1
            if prefetcher is not None:
                for target in prefetcher.observe_demand_miss(line):
                    pf_l2_requests += 1
                    if not l2.access_line(target):
                        pf_l2_misses += 1
                        if not l3.access_line(target):
                            pf_l3_misses += 1
            if l2.access_line(line):
                continue
            l2_misses += 1
            if l3.access_line(line):
                continue
            l3_misses += 1
        counts = AccessCounts(
            data_accesses=int(byte_addresses.shape[0]),
            l1d_misses=l1_misses,
            l2_misses=l2_misses,
            l3_misses=l3_misses,
            dtlb_misses=dtlb_misses,
            prefetch_l2_requests=pf_l2_requests,
            prefetch_l2_misses=pf_l2_misses,
            prefetch_l3_misses=pf_l3_misses,
        )
        counts.validate_nesting()
        return counts

    def simulate_ifetch_trace(self, byte_addresses: np.ndarray) -> AccessCounts:
        """Push an instruction-fetch trace through ITLB -> L1I -> L2 -> L3."""
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        l1i, l2, l3, itlb = self.l1i, self.l2, self.l3, self.itlb
        l1_shift = l1i.line_shift
        page_shift = itlb.page_shift
        itlb_misses = 0
        l1_misses = 0
        l2_misses = 0
        l3_misses = 0
        for a in byte_addresses.tolist():
            if not itlb.access_page(a >> page_shift):
                itlb_misses += 1
            line = a >> l1_shift
            if l1i.access_line(line):
                continue
            l1_misses += 1
            if l2.access_line(line):
                continue
            l2_misses += 1
            if l3.access_line(line):
                continue
            l3_misses += 1
        counts = AccessCounts(
            ifetches=int(byte_addresses.shape[0]),
            l1i_misses=l1_misses,
            l2_misses=l2_misses,
            l3_misses=l3_misses,
            itlb_misses=itlb_misses,
        )
        counts.validate_nesting()
        return counts

    def simulate_slice(
        self, data_addresses: np.ndarray, ifetch_addresses: np.ndarray
    ) -> AccessCounts:
        """Simulate one slice of a workload: data then instruction stream."""
        return self.simulate_data_trace(data_addresses) + self.simulate_ifetch_trace(
            ifetch_addresses
        )
