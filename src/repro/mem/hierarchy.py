"""The composed memory hierarchy of one core plus the shared L3.

Models exactly the paper's platform (Section III): per-core 32 KB L1D,
32 KB L1I and 256 KB unified L2; 20 MB shared L3; data and instruction
TLBs; DRAM behind it all.  Traces of byte addresses are pushed through
the levels with proper nesting (an access only reaches L2 if it missed
L1, and so on), producing the per-level miss counts that feed both the
PAPI-like counters and the CPI-stack timing model.

Data and instruction streams are simulated against their own L1/TLB and
share L2/L3.  Instruction fetches are simulated after the data stream of
the same slice; the instruction working sets of the paper's workloads
are small enough that ordering effects on the shared levels are
negligible (documented approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..config import NodeConfig
from ..errors import SimulationError
from .cache import SetAssociativeCache
from .dram import Dram
from .prefetch import StreamPrefetcher
from .reconfig import GatingState
from .tlb import Tlb

__all__ = ["MemoryHierarchy", "AccessCounts", "AccessRates"]


@dataclass(frozen=True)
class AccessCounts:
    """Event counts from simulating a trace slice."""

    data_accesses: int = 0
    ifetches: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    #: Prefetcher-generated traffic (zero unless a prefetcher is
    #: attached).  On real hardware these are folded into the L2/L3
    #: counters — the paper's anomalous SIRE numbers; we keep them
    #: separate and expose the combined view via properties.
    prefetch_l2_requests: int = 0
    prefetch_l2_misses: int = 0
    prefetch_l3_misses: int = 0

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "AccessCounts":
        """Counts scaled by a factor (used to extrapolate samples).

        Each field is rounded to the nearest integer and then clamped to
        its hierarchical parent, so independent per-field rounding can
        never produce counts that violate :meth:`validate_nesting`
        (e.g. ``l3_misses`` one larger than ``l2_misses`` when both
        round in opposite directions).
        """
        if factor < 0:
            raise SimulationError("scale factor must be non-negative")
        raw = {f.name: int(round(getattr(self, f.name) * factor)) for f in fields(self)}
        return _nesting_clamped(raw)

    @property
    def counter_visible_l2_misses(self) -> int:
        """What a Sandy Bridge L2 counter would show: demand + prefetch."""
        return self.l2_misses + self.prefetch_l2_misses

    @property
    def counter_visible_l3_misses(self) -> int:
        """What the L3 counter would show: demand + prefetch."""
        return self.l3_misses + self.prefetch_l3_misses

    def validate_nesting(self) -> None:
        """Check the hierarchical invariants of the counts."""
        if self.l1d_misses > self.data_accesses:
            raise SimulationError("more L1D misses than data accesses")
        if self.l1i_misses > self.ifetches:
            raise SimulationError("more L1I misses than instruction fetches")
        if self.l2_misses > self.l1d_misses + self.l1i_misses:
            raise SimulationError("more L2 misses than L2 accesses")
        if self.l3_misses > self.l2_misses:
            raise SimulationError("more L3 misses than L3 accesses")
        if self.dtlb_misses > self.data_accesses:
            raise SimulationError("more DTLB misses than data accesses")
        if self.itlb_misses > self.ifetches:
            raise SimulationError("more ITLB misses than fetches")


def _nesting_clamped(raw: dict) -> AccessCounts:
    """Build :class:`AccessCounts` from independently rounded fields,
    clamping each one to its hierarchical parent so the result always
    satisfies :meth:`AccessCounts.validate_nesting`."""
    out = dict(raw)
    out["l1d_misses"] = min(raw["l1d_misses"], out["data_accesses"])
    out["l1i_misses"] = min(raw["l1i_misses"], out["ifetches"])
    out["l2_misses"] = min(raw["l2_misses"], out["l1d_misses"] + out["l1i_misses"])
    out["l3_misses"] = min(raw["l3_misses"], out["l2_misses"])
    out["dtlb_misses"] = min(raw["dtlb_misses"], out["data_accesses"])
    out["itlb_misses"] = min(raw["itlb_misses"], out["ifetches"])
    if "prefetch_l2_misses" in out:
        out["prefetch_l2_misses"] = min(
            raw["prefetch_l2_misses"], out["prefetch_l2_requests"]
        )
        out["prefetch_l3_misses"] = min(
            raw["prefetch_l3_misses"], out["prefetch_l2_misses"]
        )
    return AccessCounts(**out)


@dataclass(frozen=True)
class AccessRates:
    """Per-instruction event rates derived from :class:`AccessCounts`."""

    l1d_misses: float
    l1i_misses: float
    l2_misses: float
    l3_misses: float
    itlb_misses: float
    dtlb_misses: float
    data_accesses: float
    ifetches: float

    @classmethod
    def from_counts(cls, counts: AccessCounts, instructions: float) -> "AccessRates":
        """Normalise counts by an instruction total."""
        if instructions <= 0:
            raise SimulationError("instructions must be positive")
        return cls(
            l1d_misses=counts.l1d_misses / instructions,
            l1i_misses=counts.l1i_misses / instructions,
            l2_misses=counts.l2_misses / instructions,
            l3_misses=counts.l3_misses / instructions,
            itlb_misses=counts.itlb_misses / instructions,
            dtlb_misses=counts.dtlb_misses / instructions,
            data_accesses=counts.data_accesses / instructions,
            ifetches=counts.ifetches / instructions,
        )

    def counts_for(self, instructions: float) -> AccessCounts:
        """Extrapolate these rates to a full-run instruction budget.

        Rounded fields are clamped to their hierarchical parents so the
        result always satisfies :meth:`AccessCounts.validate_nesting`.
        """
        if instructions < 0:
            raise SimulationError("instructions must be non-negative")
        raw = {
            "data_accesses": int(round(self.data_accesses * instructions)),
            "ifetches": int(round(self.ifetches * instructions)),
            "l1d_misses": int(round(self.l1d_misses * instructions)),
            "l1i_misses": int(round(self.l1i_misses * instructions)),
            "l2_misses": int(round(self.l2_misses * instructions)),
            "l3_misses": int(round(self.l3_misses * instructions)),
            "itlb_misses": int(round(self.itlb_misses * instructions)),
            "dtlb_misses": int(round(self.dtlb_misses * instructions)),
        }
        return _nesting_clamped(raw)


class MemoryHierarchy:
    """One core's view of the node's memory system.

    An optional :class:`~repro.mem.prefetch.StreamPrefetcher` can be
    attached; it rides the demand-miss stream and generates its own
    L2/L3 traffic, accounted separately in :class:`AccessCounts`.
    """

    def __init__(
        self,
        config: NodeConfig,
        prefetcher: StreamPrefetcher | None = None,
    ) -> None:
        self._config = config
        self.l1d = SetAssociativeCache(config.l1d)
        self.l1i = SetAssociativeCache(config.l1i)
        self.l2 = SetAssociativeCache(config.l2)
        self.l3 = SetAssociativeCache(config.l3)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)
        self.dram = Dram(config.dram)
        self.prefetcher = prefetcher
        self._gating = GatingState.ungated()

    @property
    def config(self) -> NodeConfig:
        """The owning node's configuration."""
        return self._config

    @property
    def gating(self) -> GatingState:
        """The gating state most recently applied."""
        return self._gating

    def set_gating(self, state: GatingState) -> None:
        """Record the applied gating state (set by the reconfig engine)."""
        self._gating = state

    def flush_all(self) -> None:
        """Invalidate every cache and TLB (cold start)."""
        for c in (self.l1d, self.l1i, self.l2, self.l3):
            c.flush()
        self.itlb.flush()
        self.dtlb.flush()

    def reset_stats(self) -> None:
        """Zero every component's counters."""
        for c in (self.l1d, self.l1i, self.l2, self.l3):
            c.stats.reset()
        self.itlb.stats.reset()
        self.dtlb.stats.reset()

    def simulate_data_trace(self, byte_addresses: np.ndarray) -> AccessCounts:
        """Push a data-access trace through DTLB -> L1D -> L2 -> L3.

        Returns the counts generated by *this slice only* (component
        stats accumulate across calls).  Dispatches to the vectorized
        kernels unless a prefetcher is attached (the prefetcher reacts
        to individual demand misses, which forces the per-access path).
        """
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        if self.prefetcher is not None:
            return self.simulate_data_trace_scalar(byte_addresses)
        lines = byte_addresses >> self.l1d.line_shift
        dtlb_miss = self.dtlb.access_vpns(byte_addresses >> self.dtlb.page_shift)
        l1_miss = self.l1d.access_lines(lines)
        # Only the miss stream of each level descends to the next; the
        # levels are independent state machines, so filtering by the
        # miss mask reproduces the per-access nesting exactly.
        l2_in = lines[l1_miss]
        l2_miss = self.l2.access_lines(l2_in)
        l3_miss = self.l3.access_lines(l2_in[l2_miss])
        counts = AccessCounts(
            data_accesses=int(byte_addresses.shape[0]),
            l1d_misses=int(l1_miss.sum()),
            l2_misses=int(l2_miss.sum()),
            l3_misses=int(l3_miss.sum()),
            dtlb_misses=int(dtlb_miss.sum()),
        )
        counts.validate_nesting()
        return counts

    def simulate_data_trace_scalar(self, byte_addresses: np.ndarray) -> AccessCounts:
        """Per-access reference implementation of :meth:`simulate_data_trace`.

        Retained as the equivalence oracle for the vectorized path and
        as the only path that can drive a prefetcher.
        """
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        l1d, l2, l3, dtlb = self.l1d, self.l2, self.l3, self.dtlb
        prefetcher = self.prefetcher
        l1_shift = l1d.line_shift
        page_shift = dtlb.page_shift
        dtlb_misses = 0
        l1_misses = 0
        l2_misses = 0
        l3_misses = 0
        pf_l2_requests = 0
        pf_l2_misses = 0
        pf_l3_misses = 0
        for a in byte_addresses.tolist():
            if not dtlb.access_page(a >> page_shift):
                dtlb_misses += 1
            line = a >> l1_shift
            if prefetcher is not None:
                prefetcher.observe_demand_access(line)
            if l1d.access_line(line):
                continue
            l1_misses += 1
            if prefetcher is not None:
                for target in prefetcher.observe_demand_miss(line):
                    pf_l2_requests += 1
                    if not l2.access_line(target):
                        pf_l2_misses += 1
                        if not l3.access_line(target):
                            pf_l3_misses += 1
            if l2.access_line(line):
                continue
            l2_misses += 1
            if l3.access_line(line):
                continue
            l3_misses += 1
        counts = AccessCounts(
            data_accesses=int(byte_addresses.shape[0]),
            l1d_misses=l1_misses,
            l2_misses=l2_misses,
            l3_misses=l3_misses,
            dtlb_misses=dtlb_misses,
            prefetch_l2_requests=pf_l2_requests,
            prefetch_l2_misses=pf_l2_misses,
            prefetch_l3_misses=pf_l3_misses,
        )
        counts.validate_nesting()
        return counts

    def simulate_ifetch_trace(self, byte_addresses: np.ndarray) -> AccessCounts:
        """Push an instruction-fetch trace through ITLB -> L1I -> L2 -> L3."""
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        lines = byte_addresses >> self.l1i.line_shift
        itlb_miss = self.itlb.access_vpns(byte_addresses >> self.itlb.page_shift)
        l1_miss = self.l1i.access_lines(lines)
        l2_in = lines[l1_miss]
        l2_miss = self.l2.access_lines(l2_in)
        l3_miss = self.l3.access_lines(l2_in[l2_miss])
        counts = AccessCounts(
            ifetches=int(byte_addresses.shape[0]),
            l1i_misses=int(l1_miss.sum()),
            l2_misses=int(l2_miss.sum()),
            l3_misses=int(l3_miss.sum()),
            itlb_misses=int(itlb_miss.sum()),
        )
        counts.validate_nesting()
        return counts

    def simulate_ifetch_trace_scalar(self, byte_addresses: np.ndarray) -> AccessCounts:
        """Per-access reference implementation of :meth:`simulate_ifetch_trace`."""
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        l1i, l2, l3, itlb = self.l1i, self.l2, self.l3, self.itlb
        l1_shift = l1i.line_shift
        page_shift = itlb.page_shift
        itlb_misses = 0
        l1_misses = 0
        l2_misses = 0
        l3_misses = 0
        for a in byte_addresses.tolist():
            if not itlb.access_page(a >> page_shift):
                itlb_misses += 1
            line = a >> l1_shift
            if l1i.access_line(line):
                continue
            l1_misses += 1
            if l2.access_line(line):
                continue
            l2_misses += 1
            if l3.access_line(line):
                continue
            l3_misses += 1
        counts = AccessCounts(
            ifetches=int(byte_addresses.shape[0]),
            l1i_misses=l1_misses,
            l2_misses=l2_misses,
            l3_misses=l3_misses,
            itlb_misses=itlb_misses,
        )
        counts.validate_nesting()
        return counts

    def simulate_slice(
        self, data_addresses: np.ndarray, ifetch_addresses: np.ndarray
    ) -> AccessCounts:
        """Simulate one slice of a workload: data then instruction stream."""
        return self.simulate_data_trace(data_addresses) + self.simulate_ifetch_trace(
            ifetch_addresses
        )
