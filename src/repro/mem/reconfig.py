"""Dynamic cache reconfiguration (DCR) engine.

Section II-B surveys DCR — shutting off parts of the cache or changing
associativity — as a power-reduction technique beyond DVFS, and
Section IV-B concludes from the counter data that "techniques that
involve the configuration of the memory hierarchy are being employed"
at the lowest caps.  This module gives that mechanism a concrete form:

- :class:`GatingState` is an immutable description of how much of the
  hierarchy is powered: way fractions per cache, TLB entry fractions,
  and latency multipliers for gated DRAM / drowsy cache arrays.
- :class:`ReconfigEngine` applies a gating state to a live
  :class:`~repro.mem.hierarchy.MemoryHierarchy` and computes the (small)
  power saved, which the BMC trades against the (large) performance
  loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import EscalationLevelSpec, NodeConfig
from ..errors import ConfigError

__all__ = ["GatingState", "ReconfigEngine"]


@dataclass(frozen=True)
class GatingState:
    """Immutable snapshot of memory-hierarchy gating.

    A gating state is hashable so simulation layers can cache
    miss-ratio measurements per (workload, gating) pair.
    """

    l1_way_fraction: float = 1.0
    l2_way_fraction: float = 1.0
    l3_way_fraction: float = 1.0
    itlb_fraction: float = 1.0
    dtlb_fraction: float = 1.0
    dram_latency_multiplier: float = 1.0
    cache_latency_multiplier: float = 1.0

    def __post_init__(self) -> None:
        for attr in (
            "l1_way_fraction",
            "l2_way_fraction",
            "l3_way_fraction",
            "itlb_fraction",
            "dtlb_fraction",
        ):
            v = getattr(self, attr)
            if not 0.0 < v <= 1.0:
                raise ConfigError(f"gating {attr} must be in (0, 1], got {v}")
        if self.dram_latency_multiplier < 1.0 or self.cache_latency_multiplier < 1.0:
            raise ConfigError("gating latency multipliers must be >= 1")

    @classmethod
    def ungated(cls) -> "GatingState":
        """Everything powered, no latency inflation."""
        return cls()

    @classmethod
    def from_level(cls, level: EscalationLevelSpec) -> "GatingState":
        """Build the gating state one escalation rung prescribes."""
        return cls(
            l1_way_fraction=level.l1_way_fraction,
            l2_way_fraction=level.l2_way_fraction,
            l3_way_fraction=level.l3_way_fraction,
            itlb_fraction=level.itlb_fraction,
            dtlb_fraction=level.dtlb_fraction,
            dram_latency_multiplier=level.dram_latency_multiplier,
            cache_latency_multiplier=level.cache_latency_multiplier,
        )

    @property
    def is_ungated(self) -> bool:
        """True when this state changes nothing."""
        return self == GatingState.ungated()

    def config_key(self) -> tuple:
        """Key identifying the *miss-count-relevant* part of the state.

        Latency multipliers change access *times*, not miss behaviour,
        so they are excluded; two states with the same key produce
        identical miss counts for the same trace.
        """
        return (
            self.l1_way_fraction,
            self.l2_way_fraction,
            self.l3_way_fraction,
            self.itlb_fraction,
            self.dtlb_fraction,
        )


def _ways_for(total_ways: int, fraction: float) -> int:
    """Enabled way count for a fraction (at least one way)."""
    return max(1, int(round(total_ways * fraction)))


class ReconfigEngine:
    """Applies gating states to a hierarchy and prices their savings."""

    def __init__(self, node_config: NodeConfig) -> None:
        self._cfg = node_config

    @property
    def node_config(self) -> NodeConfig:
        """The node this engine reconfigures."""
        return self._cfg

    def apply(self, hierarchy, state: GatingState) -> None:
        """Reconfigure a live hierarchy to match ``state``.

        ``hierarchy`` is a :class:`~repro.mem.hierarchy.MemoryHierarchy`
        (duck-typed here to avoid a circular import).
        """
        hierarchy.l1d.set_enabled_ways(
            _ways_for(self._cfg.l1d.ways, state.l1_way_fraction)
        )
        hierarchy.l1i.set_enabled_ways(
            _ways_for(self._cfg.l1i.ways, state.l1_way_fraction)
        )
        hierarchy.l2.set_enabled_ways(
            _ways_for(self._cfg.l2.ways, state.l2_way_fraction)
        )
        hierarchy.l3.set_enabled_ways(
            _ways_for(self._cfg.l3.ways, state.l3_way_fraction)
        )
        hierarchy.itlb.set_enabled_fraction(state.itlb_fraction)
        hierarchy.dtlb.set_enabled_fraction(state.dtlb_fraction)
        hierarchy.dram.set_latency_multiplier(state.dram_latency_multiplier)
        hierarchy.set_gating(state)

    def leakage_saving_w(self, state: GatingState) -> float:
        """Leakage saved by gating, from the per-cache leakage budgets.

        This is deliberately small — the paper observes that sub-floor
        techniques provide "small decreases in power consumption at the
        cost of high losses in execution time performance".
        """
        cfg = self._cfg
        saving = 0.0
        saving += cfg.l1d.leakage_w * (1.0 - state.l1_way_fraction)
        saving += cfg.l1i.leakage_w * (1.0 - state.l1_way_fraction)
        saving += cfg.l2.leakage_w * (1.0 - state.l2_way_fraction)
        saving += cfg.l3.leakage_w * (1.0 - state.l3_way_fraction)
        saving += cfg.itlb.leakage_w * (1.0 - state.itlb_fraction)
        saving += cfg.dtlb.leakage_w * (1.0 - state.dtlb_fraction)
        if state.dram_latency_multiplier > 1.0:
            # Ranks parked in a low-power state save a slice of DRAM
            # background power, asymptoting with gating depth.
            saving += self._cfg.dram.background_w * 0.25 * (
                1.0 - 1.0 / state.dram_latency_multiplier
            )
        return saving
