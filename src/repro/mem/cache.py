"""Set-associative cache simulator with LRU replacement and way gating.

The simulator is trace-driven and models exactly what the reproduction
needs: hit/miss behaviour as a function of geometry and of the number of
*enabled* ways.  Way gating is the dynamic-cache-reconfiguration (DCR)
mechanism the paper infers is used below the DVFS floor: disabling ways
reduces leakage slightly while shrinking effective capacity and
associativity, which is what makes the cache-resident Stereo Matching
workload's L2/L3 misses jump at the 125/120 W caps.

Implementation notes
--------------------
Each set is a Python list of tags ordered most-recently-used first.
LRU with a list is O(ways) per access, which at <= 20 ways is cheap;
the batch entry points (:meth:`SetAssociativeCache.access_lines` /
:meth:`~SetAssociativeCache.access_bytes`) route through the shared
vectorized kernel in :mod:`repro.mem.lru`, which elides
predecessor-equal accesses in one NumPy pass and runs only the residual
accesses through the stateful LRU loop — bit-identical to the scalar
:meth:`~SetAssociativeCache.access_line` path, which is retained as the
reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CacheGeometry
from ..errors import ConfigError, SimulationError
from .lru import lru_access

__all__ = ["SetAssociativeCache", "CacheStats"]


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    #: Lines discarded because their way was gated off.
    gating_invalidations: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0.0 when the cache was never touched)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = self.hits = self.misses = self.gating_invalidations = 0


class SetAssociativeCache:
    """LRU set-associative cache over physical line addresses."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self._geom = geometry
        self._n_sets = geometry.n_sets
        self._set_mask = self._n_sets - 1
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._enabled_ways = geometry.ways
        self._sets: list[list[int]] = [[] for _ in range(self._n_sets)]
        self.stats = CacheStats()

    @property
    def geometry(self) -> CacheGeometry:
        """The configured geometry."""
        return self._geom

    @property
    def line_shift(self) -> int:
        """log2 of the line size (address >> line_shift = line number)."""
        return self._line_shift

    @property
    def enabled_ways(self) -> int:
        """How many ways are currently powered."""
        return self._enabled_ways

    @property
    def effective_capacity_bytes(self) -> int:
        """Capacity reachable with the current gating."""
        return self._enabled_ways * self._n_sets * self._geom.line_bytes

    def set_enabled_ways(self, ways: int) -> None:
        """Gate the cache down (or back up) to ``ways`` enabled ways.

        Gating down invalidates lines held in the gated ways (the LRU
        tail of each set), as a real drowsy/way-gated cache would flush
        them; gating back up simply re-enables capacity.
        """
        if not 1 <= ways <= self._geom.ways:
            raise ConfigError(
                f"{self._geom.name}: enabled ways must be in 1..{self._geom.ways}"
            )
        if ways < self._enabled_ways:
            for s in self._sets:
                dropped = len(s) - ways
                if dropped > 0:
                    del s[ways:]
                    self.stats.gating_invalidations += dropped
        self._enabled_ways = ways

    def line_address(self, byte_address: int) -> int:
        """The line-granular address of a byte address."""
        return byte_address >> self._line_shift

    def access_line(self, line_address: int) -> bool:
        """Access one line; returns True on hit.

        On a miss the line is installed, evicting the LRU way if the
        set is full at the current enabled associativity.
        """
        idx = line_address & self._set_mask
        tag = line_address >> (self._n_sets.bit_length() - 1)
        s = self._sets[idx]
        self.stats.accesses += 1
        try:
            pos = s.index(tag)
        except ValueError:
            self.stats.misses += 1
            s.insert(0, tag)
            if len(s) > self._enabled_ways:
                s.pop()
            return False
        self.stats.hits += 1
        if pos:
            s.pop(pos)
            s.insert(0, tag)
        return True

    def access_lines(self, line_addresses: np.ndarray) -> np.ndarray:
        """Run a vector of line addresses through the cache.

        Returns the per-access boolean miss mask, bit-identical to
        calling :meth:`access_line` once per element.  Uses the shared
        vectorized kernel (:func:`repro.mem.lru.lru_access`).
        """
        miss = lru_access(
            self._sets,
            line_addresses,
            self._set_mask,
            self._n_sets.bit_length() - 1,
            self._enabled_ways,
        )
        n = int(line_addresses.shape[0])
        misses = int(miss.sum())
        self.stats.accesses += n
        self.stats.misses += misses
        self.stats.hits += n - misses
        return miss

    def access_bytes(self, byte_addresses: np.ndarray) -> int:
        """Run a vector of byte addresses through the cache.

        Returns the number of misses in this batch.
        """
        if byte_addresses.ndim != 1:
            raise SimulationError("address trace must be one-dimensional")
        return int(self.access_lines(byte_addresses >> self._line_shift).sum())

    def flush(self) -> None:
        """Invalidate every line (counters are preserved)."""
        for s in self._sets:
            s.clear()

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self._geom
        return (
            f"SetAssociativeCache({g.name}, {g.capacity_bytes}B, "
            f"{self._enabled_ways}/{g.ways} ways, {self._n_sets} sets)"
        )
