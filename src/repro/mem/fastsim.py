"""Cross-gating memoizing trace engine.

``NodeRunner.rates_for`` needs steady-state miss counts for every
(workload, gating) pair a run visits.  The straightforward path builds
a fresh :class:`~repro.mem.hierarchy.MemoryHierarchy` per gating and
replays the whole slice — but the escalation ladder never gates L1 or
the data TLB, and reuses the same L2/L3 fractions across rungs, so most
of that replay is identical work.

:class:`TraceEngine` exploits the fact that every structure (each
cache level, each TLB) is an *independent* state machine whose input
stream is fully determined by the structures above it:

- the L1D/L1I/DTLB/ITLB input streams depend only on the slice, so
  their miss masks are memoized per enabled-way count;
- the L2 input stream is the concatenation of the L1 miss streams in
  the exact order the scalar path produces them
  (``[preload_d, warm_d, warm_i, meas_d, meas_i]``), memoized per
  (L1D ways, L1I ways, L2 ways);
- the L3 input stream is the L2 miss stream, memoized per full way
  tuple.

The resulting :meth:`counts` are bit-identical to configuring a fresh
hierarchy with :class:`~repro.mem.reconfig.ReconfigEngine` and running
preload, warmup, and measured slices through it, because each structure
sees exactly the same sub-stream in the same order.  A full Table II
sweep touches four distinct gating keys but only simulates L1 once.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..config import NodeConfig
from ..obs.logging import get_logger
from ..trace.events import TraceSlice
from .cache import SetAssociativeCache
from .hierarchy import AccessCounts
from .reconfig import GatingState, _ways_for
from .tlb import Tlb

__all__ = ["TraceEngine"]

_log = get_logger("mem.fastsim")


def _chunk_sums(mask: np.ndarray, lens: Tuple[int, ...]) -> Tuple[int, ...]:
    """Per-chunk miss totals of a mask partitioned into chunk lengths."""
    out = []
    start = 0
    for n in lens:
        out.append(int(mask[start : start + n].sum()))
        start += n
    return tuple(out)


class TraceEngine:
    """Memoized per-structure simulation of one workload slice."""

    def __init__(self, config: NodeConfig, trace_slice: TraceSlice) -> None:
        self._cfg = config
        self._slice = trace_slice
        d_warm, d_meas, i_warm, i_meas = trace_slice.split_warmup()
        pre = trace_slice.preload_addresses
        d_all = np.concatenate([pre, d_warm, d_meas])
        i_all = np.concatenate([i_warm, i_meas])
        l1d_shift = config.l1d.line_bytes.bit_length() - 1
        l1i_shift = config.l1i.line_bytes.bit_length() - 1
        self._d_lines = d_all >> l1d_shift
        self._i_lines = i_all >> l1i_shift
        self._d_vpns = d_all >> (config.dtlb.page_bytes.bit_length() - 1)
        self._i_vpns = i_all >> (config.itlb.page_bytes.bit_length() - 1)
        #: Data-side chunk lengths: (preload, warmup, measured).
        self._d_lens = (len(pre), len(d_warm), len(d_meas))
        #: Ifetch-side chunk lengths: (warmup, measured).
        self._i_lens = (len(i_warm), len(i_meas))
        self._l1d_memo: Dict[int, np.ndarray] = {}
        self._l1i_memo: Dict[int, np.ndarray] = {}
        self._dtlb_memo: Dict[int, int] = {}
        self._itlb_memo: Dict[int, int] = {}
        self._l2_memo: Dict[tuple, Tuple[np.ndarray, Tuple[int, ...]]] = {}
        self._l3_memo: Dict[tuple, Tuple[int, ...]] = {}

    @property
    def trace_slice(self) -> TraceSlice:
        """The slice this engine simulates."""
        return self._slice

    def _l1_mask(
        self, memo: Dict[int, np.ndarray], geom, ways: int, lines: np.ndarray
    ) -> np.ndarray:
        if ways not in memo:
            cache = SetAssociativeCache(geom)
            cache.set_enabled_ways(ways)
            memo[ways] = cache.access_lines(lines)
            _log.debug(
                "structure_simulated",
                structure="l1",
                ways=ways,
                accesses=len(lines),
            )
        return memo[ways]

    def _tlb_meas_misses(
        self,
        memo: Dict[int, int],
        geom,
        fraction: float,
        vpns: np.ndarray,
        meas_len: int,
    ) -> int:
        # Same fraction -> ways mapping as Tlb.set_enabled_fraction.
        ways = max(1, int(round(geom.ways * fraction)))
        if ways not in memo:
            tlb = Tlb(geom)
            tlb.set_enabled_fraction(fraction)
            mask = tlb.access_vpns(vpns)
            memo[ways] = int(mask[len(vpns) - meas_len :].sum())
        return memo[ways]

    def _l2_result(
        self, l1d_ways: int, l1i_ways: int, l2_ways: int
    ) -> Tuple[np.ndarray, Tuple[int, ...]]:
        """L2 miss stream and its 5-chunk lengths for a way combination.

        Chunks follow the scalar simulation order:
        ``[preload_d, warm_d, warm_i, meas_d, meas_i]``.
        """
        key = (l1d_ways, l1i_ways, l2_ways)
        if key not in self._l2_memo:
            dmask = self._l1_mask(
                self._l1d_memo, self._cfg.l1d, l1d_ways, self._d_lines
            )
            imask = self._l1_mask(
                self._l1i_memo, self._cfg.l1i, l1i_ways, self._i_lines
            )
            p, w, m = self._d_lens
            iw, im = self._i_lens
            chunks = [
                self._d_lines[:p][dmask[:p]],
                self._d_lines[p : p + w][dmask[p : p + w]],
                self._i_lines[:iw][imask[:iw]],
                self._d_lines[p + w :][dmask[p + w :]],
                self._i_lines[iw:][imask[iw:]],
            ]
            stream = np.concatenate(chunks)
            lens = tuple(len(c) for c in chunks)
            l2 = SetAssociativeCache(self._cfg.l2)
            l2.set_enabled_ways(l2_ways)
            l2_mask = l2.access_lines(stream)
            self._l2_memo[key] = (stream[l2_mask], _chunk_sums(l2_mask, lens))
            _log.debug(
                "structure_simulated",
                structure="l2",
                ways=l2_ways,
                accesses=len(stream),
            )
        return self._l2_memo[key]

    def _l3_chunks(
        self, l1d_ways: int, l1i_ways: int, l2_ways: int, l3_ways: int
    ) -> Tuple[int, ...]:
        """Per-chunk L3 miss totals for a way combination."""
        key = (l1d_ways, l1i_ways, l2_ways, l3_ways)
        if key not in self._l3_memo:
            l2_miss_stream, l2_chunks = self._l2_result(l1d_ways, l1i_ways, l2_ways)
            l3 = SetAssociativeCache(self._cfg.l3)
            l3.set_enabled_ways(l3_ways)
            l3_mask = l3.access_lines(l2_miss_stream)
            self._l3_memo[key] = _chunk_sums(l3_mask, l2_chunks)
            _log.debug(
                "structure_simulated",
                structure="l3",
                ways=l3_ways,
                accesses=len(l2_miss_stream),
            )
        return self._l3_memo[key]

    def counts(self, gating: GatingState) -> AccessCounts:
        """Measured-region counts under a gating state.

        Bit-identical to gating a fresh hierarchy, replaying preload and
        warmup, and returning ``simulate_slice(d_meas, i_meas)``.
        """
        cfg = self._cfg
        l1d_ways = _ways_for(cfg.l1d.ways, gating.l1_way_fraction)
        l1i_ways = _ways_for(cfg.l1i.ways, gating.l1_way_fraction)
        l2_ways = _ways_for(cfg.l2.ways, gating.l2_way_fraction)
        l3_ways = _ways_for(cfg.l3.ways, gating.l3_way_fraction)
        p, w, m = self._d_lens
        iw, im = self._i_lens
        dmask = self._l1_mask(self._l1d_memo, cfg.l1d, l1d_ways, self._d_lines)
        imask = self._l1_mask(self._l1i_memo, cfg.l1i, l1i_ways, self._i_lines)
        _, l2_chunks = self._l2_result(l1d_ways, l1i_ways, l2_ways)
        l3_chunks = self._l3_chunks(l1d_ways, l1i_ways, l2_ways, l3_ways)
        counts = AccessCounts(
            data_accesses=m,
            ifetches=im,
            l1d_misses=int(dmask[p + w :].sum()),
            l1i_misses=int(imask[iw:].sum()),
            # Chunks 3 and 4 are the measured data and ifetch streams.
            l2_misses=l2_chunks[3] + l2_chunks[4],
            l3_misses=l3_chunks[3] + l3_chunks[4],
            dtlb_misses=self._tlb_meas_misses(
                self._dtlb_memo, cfg.dtlb, gating.dtlb_fraction, self._d_vpns, m
            ),
            itlb_misses=self._tlb_meas_misses(
                self._itlb_memo, cfg.itlb, gating.itlb_fraction, self._i_vpns, im
            ),
        )
        counts.validate_nesting()
        return counts
