"""``repro-powercap top``: a curses-free live service dashboard.

Polls a running experiment service's ``/metrics`` (Prometheus text)
and ``/healthz`` endpoints and repaints a plain-ASCII panel: queue
depth and job states, worker utilization, rate-cache hit rate, stream
bus activity, per-rack headroom bars from the fleet health gauges, and
the most recent detector events.  Plain ANSI cursor-up repainting — no
curses, no dependencies — so it works in any terminal and degrades to
append-only output when redirected.

The SSE endpoints stream per-event detail; this dashboard deliberately
rides the scrape path instead, so it works against any service build
and costs the server one render per interval.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple
from urllib.request import urlopen

from .logging import get_logger

__all__ = [
    "parse_metrics",
    "render_dashboard",
    "run_top",
]

_log = get_logger("obs.top")

#: One parsed sample: labels (possibly empty) -> value.
MetricValue = Tuple[Dict[str, str], float]


def parse_metrics(text: str) -> Dict[str, List[MetricValue]]:
    """Parse Prometheus text exposition into name -> [(labels, value)].

    Handles exactly the subset our registry renders: ``name value``
    and ``name{k="v",...} value`` lines, ``#`` comments skipped.
    """
    out: Dict[str, List[MetricValue]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            head, raw_value = line.rsplit(None, 1)
            value = float(raw_value)
        except ValueError:
            continue
        labels: Dict[str, str] = {}
        name = head
        if "{" in head and head.endswith("}"):
            name, raw_labels = head.split("{", 1)
            for pair in raw_labels[:-1].split(","):
                if "=" not in pair:
                    continue
                key, val = pair.split("=", 1)
                labels[key.strip()] = val.strip().strip('"')
        out.setdefault(name, []).append((labels, value))
    return out


def _scalar(
    metrics: Dict[str, List[MetricValue]], name: str, default: float = 0.0
) -> float:
    samples = metrics.get(name)
    if not samples:
        return default
    return samples[0][1]


def _labelled(
    metrics: Dict[str, List[MetricValue]], name: str
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for labels, value in metrics.get(name, []):
        if labels:
            out[next(iter(labels.values()))] = value
    return out


def _bar(value: float, lo: float, hi: float, width: int = 20) -> str:
    if hi <= lo:
        frac = 0.0
    else:
        frac = max(0.0, min(1.0, (value - lo) / (hi - lo)))
    filled = int(round(frac * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(
    metrics: Dict[str, List[MetricValue]],
    health: Optional[dict] = None,
    width: int = 72,
) -> str:
    """One dashboard frame from parsed ``/metrics`` (+ ``/healthz``)."""
    lines: List[str] = []
    rule = "-" * width
    lines.append("repro-powercap top".ljust(width - 19) + time.strftime("%H:%M:%S"))
    lines.append(rule)

    # Service: queue + jobs + workers.
    queue_depth = _scalar(metrics, "repro_queue_depth")
    states = _labelled(metrics, "repro_jobs")
    workers = float(health.get("workers", 0)) if health else 0.0
    running = states.get("running", 0.0)
    util = (100.0 * running / workers) if workers > 0 else 0.0
    lines.append(
        f"queue depth {queue_depth:>6.0f}   workers {workers:>3.0f} "
        f"({util:5.1f}% busy)"
    )
    if states:
        jobs = "  ".join(
            f"{state}={count:.0f}" for state, count in sorted(states.items())
        )
        lines.append(f"jobs  {jobs}")

    # Engine: rate cache + effective jobs.
    hits = _scalar(metrics, "repro_rate_cache_hits_total")
    misses = _scalar(metrics, "repro_rate_cache_misses_total")
    total = hits + misses
    hit_rate = (100.0 * hits / total) if total > 0 else 0.0
    eff = _scalar(metrics, "repro_engine_effective_jobs")
    lines.append(
        f"rate cache  {hit_rate:5.1f}% hit ({hits:.0f}/{total:.0f})   "
        f"effective jobs {eff:.0f}"
    )

    # Stream bus.
    events = _scalar(metrics, "repro_stream_events_total")
    dropped = _scalar(metrics, "repro_stream_dropped_total")
    subs = _scalar(metrics, "repro_stream_subscribers")
    lines.append(
        f"stream      {events:.0f} events   {dropped:.0f} dropped   "
        f"{subs:.0f} subscribers"
    )

    # Fleet health (present once a fleet run with health rollups ran;
    # the gauges exist from registration, so gate on a run having set
    # the node count).
    if _scalar(metrics, "repro_fleet_nodes") > 0:
        lines.append(rule)
        headroom = _scalar(metrics, "repro_fleet_health_headroom_w")
        capfloor = _scalar(metrics, "repro_fleet_health_capfloor_frac")
        debt = _scalar(metrics, "repro_fleet_health_slo_debt_rate_w")
        esc = _scalar(metrics, "repro_fleet_health_escalation_level")
        lines.append(
            f"fleet  headroom {headroom:>9.1f} W   cap-floor "
            f"{100.0 * capfloor:5.1f}%   debt {debt:>8.1f} W/s   "
            f"esc L{esc:.0f}"
        )
        # Rack headroom histogram -> coarse distribution bar.
        hist = metrics.get("repro_fleet_health_rack_headroom_w_bucket", [])
        if hist:
            cum = sorted(
                (
                    (labels.get("le", "+Inf"), value)
                    for labels, value in hist
                ),
                key=lambda kv: (
                    float("inf") if kv[0] == "+Inf" else float(kv[0])
                ),
            )
            total_racks = cum[-1][1] if cum else 0.0
            if total_racks > 0:
                prev = 0.0
                for le, count in cum:
                    in_bucket = count - prev
                    prev = count
                    if in_bucket <= 0:
                        continue
                    label = f"<= {le} W".rjust(14)
                    lines.append(
                        f"  racks {label}  "
                        f"{_bar(in_bucket, 0, total_racks)} "
                        f"{in_bucket:.0f}"
                    )

    # Detector events (labelled gauge: phenomenon -> count).
    detections = _labelled(metrics, "repro_telemetry_detections_total")
    if detections:
        lines.append(rule)
        det = "  ".join(
            f"{name}={count:.0f}"
            for name, count in sorted(detections.items())
        )
        lines.append(f"detections  {det}")

    return "\n".join(lines)


def _fetch(url: str, timeout: float = 5.0) -> bytes:
    with urlopen(url, timeout=timeout) as resp:  # noqa: S310 — local URL
        return resp.read()


def run_top(
    url: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    once: bool = False,
    write=None,
) -> int:
    """Poll ``url`` and repaint the dashboard until interrupted.

    ``once`` renders a single frame (no repaint escapes) — the testable
    and scriptable path; ``iterations`` bounds the loop.  Returns a
    process exit code.
    """
    import sys

    out = write or sys.stdout.write
    base = url.rstrip("/")
    frames = 0
    prev_height = 0
    try:
        while True:
            try:
                metrics = parse_metrics(
                    _fetch(base + "/metrics").decode()
                )
                try:
                    import json

                    health = json.loads(_fetch(base + "/healthz"))
                except Exception:  # noqa: BLE001 — healthz is optional
                    health = None
                frame = render_dashboard(metrics, health)
            except OSError as exc:
                frame = f"repro-powercap top\n{'-' * 72}\nunreachable: {base} ({exc})"
            if prev_height and not once:
                # Move the cursor up over the previous frame.
                out(f"\x1b[{prev_height}F\x1b[J")
            out(frame + "\n")
            prev_height = frame.count("\n") + 1
            frames += 1
            if once or (iterations is not None and frames >= iterations):
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
