"""Observability: structured logging, span tracing, provenance, metrics.

``repro.obs`` is the stdlib-only instrumentation layer every other
subsystem threads through (see ``docs/OBSERVABILITY.md``):

- :mod:`.logging` — ``get_logger(name)`` structured loggers with a
  human or JSON-lines formatter (``REPRO_LOG_LEVEL`` /
  ``REPRO_LOG_JSON``, or the CLI's ``--log-level`` / ``--log-json``);
- :mod:`.tracing` — ``span(...)`` context-manager/decorator timing
  named engine phases into a process-wide accumulator and, when
  installed, a :class:`TraceCollector` that exports Chrome
  ``trace_event`` JSON (``--trace-out``);
- :mod:`.provenance` — manifests tying a stored result to the config
  digest, workload spec, seed, code version, cache stats, and phase
  timings that produced it;
- :mod:`.metrics` — the Prometheus exposition layer (moved here from
  ``repro.service.metrics``, which re-exports it) plus
  :func:`engine_metrics`, the simulation-core instrument panel, and
  :func:`telemetry_metrics`, the in-run telemetry panel;
- :mod:`.timeseries` — bounded, downsampling in-run telemetry: the
  :class:`SeriesChannel` ring, :class:`RunTimeline`, and the
  :class:`TelemetrySampler` the runner feeds each control step
  (``--telemetry-period`` / ``REPRO_TELEMETRY_*``);
- :mod:`.detect` — phenomenon detectors scanning timelines for the
  paper's frequency-floor pinning, cap overshoot/settling, and
  energy-knee onset;
- :mod:`.stream` — the bounded pub/sub event bus behind the HTTP
  API's Server-Sent Events endpoints: telemetry samples, detections,
  job lifecycle, and fleet health, live, with drop-oldest
  backpressure and ``Last-Event-ID`` replay;
- :mod:`.profile` — a stdlib sampling profiler
  (``sys._current_frames`` on a background thread) attributing wall
  time to open spans and hot functions, with per-quantum cost
  attribution (``--profile`` / ``REPRO_PROFILE``);
- :mod:`.archive` — the persistent observability warehouse: SQLite
  metric-snapshot history (background :class:`MetricsRecorder` with
  exact-integral retention), distilled per-run records, fleet-health
  windows, bench-document ingestion, named baselines, and the
  median-shift trend engine behind ``repro-powercap trends`` /
  ``compare`` and ``GET /metrics/history`` / ``GET /runs/compare``.
"""

from .archive import (
    ARCHIVE_SCHEMA_VERSION,
    MetricsRecorder,
    ObsArchive,
    Trend,
    TrendRule,
    detect_trends,
    distill_experiment_doc,
    distill_fleet_doc,
    rule_for_series,
)
from .detect import (
    Detection,
    detect_cap_overshoot,
    detect_energy_knee,
    detect_frequency_floor,
    scan_experiment,
    scan_timeline,
)

from .logging import (
    HumanFormatter,
    JsonFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
    logging_configured,
)
from .metrics import (
    BuildInfo,
    BuildInfoMetrics,
    Counter,
    EngineMetrics,
    FleetMetrics,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    ProfileMetrics,
    ServiceMetrics,
    StreamMetrics,
    TelemetryMetrics,
    build_info_metrics,
    engine_metrics,
    fleet_metrics,
    profile_metrics,
    stream_metrics,
    telemetry_metrics,
)
from .profile import (
    ProfileConfig,
    ProfileReport,
    SamplingProfiler,
    profile_from_env,
    profiling_enabled,
)
from .provenance import (
    PROVENANCE_SCHEMA_VERSION,
    build_provenance,
    config_digest,
    git_describe,
    render_provenance,
)
from .stream import (
    FLEET_TOPIC,
    JOB_TOPIC_PREFIX,
    TERMINAL_EVENT_KINDS,
    EventBus,
    StreamEvent,
    Subscription,
    current_stream,
    event_bus,
    reset_event_bus,
    stream_context,
    stream_publish,
)
from .timeseries import (
    TIMELINE_SCHEMA_VERSION,
    RunTimeline,
    SeriesChannel,
    SeriesPoint,
    TelemetryConfig,
    TelemetrySampler,
    timeline_from_dict,
    timeline_to_dict,
)
from .tracing import (
    TraceCollector,
    current_collector,
    current_span_stack,
    phase_totals,
    reset_phase_totals,
    set_enabled,
    span,
    span_stacks_by_thread,
    start_tracing,
    stop_tracing,
    tracing_enabled,
)

__all__ = [
    "get_logger",
    "configure_logging",
    "logging_configured",
    "StructuredLogger",
    "JsonFormatter",
    "HumanFormatter",
    "span",
    "TraceCollector",
    "start_tracing",
    "stop_tracing",
    "current_collector",
    "current_span_stack",
    "span_stacks_by_thread",
    "phase_totals",
    "reset_phase_totals",
    "set_enabled",
    "tracing_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ServiceMetrics",
    "EngineMetrics",
    "engine_metrics",
    "TelemetryMetrics",
    "telemetry_metrics",
    "FleetMetrics",
    "fleet_metrics",
    "StreamMetrics",
    "stream_metrics",
    "ProfileMetrics",
    "profile_metrics",
    "BuildInfo",
    "BuildInfoMetrics",
    "build_info_metrics",
    "ARCHIVE_SCHEMA_VERSION",
    "ObsArchive",
    "MetricsRecorder",
    "Trend",
    "TrendRule",
    "detect_trends",
    "rule_for_series",
    "distill_experiment_doc",
    "distill_fleet_doc",
    "StreamEvent",
    "Subscription",
    "EventBus",
    "event_bus",
    "reset_event_bus",
    "stream_context",
    "current_stream",
    "stream_publish",
    "JOB_TOPIC_PREFIX",
    "FLEET_TOPIC",
    "TERMINAL_EVENT_KINDS",
    "ProfileConfig",
    "ProfileReport",
    "SamplingProfiler",
    "profiling_enabled",
    "profile_from_env",
    "TIMELINE_SCHEMA_VERSION",
    "SeriesPoint",
    "SeriesChannel",
    "RunTimeline",
    "TelemetryConfig",
    "TelemetrySampler",
    "timeline_to_dict",
    "timeline_from_dict",
    "Detection",
    "detect_frequency_floor",
    "detect_cap_overshoot",
    "detect_energy_knee",
    "scan_timeline",
    "scan_experiment",
    "PROVENANCE_SCHEMA_VERSION",
    "build_provenance",
    "config_digest",
    "git_describe",
    "render_provenance",
]
