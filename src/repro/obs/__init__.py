"""Observability: structured logging, span tracing, provenance, metrics.

``repro.obs`` is the stdlib-only instrumentation layer every other
subsystem threads through (see ``docs/OBSERVABILITY.md``):

- :mod:`.logging` — ``get_logger(name)`` structured loggers with a
  human or JSON-lines formatter (``REPRO_LOG_LEVEL`` /
  ``REPRO_LOG_JSON``, or the CLI's ``--log-level`` / ``--log-json``);
- :mod:`.tracing` — ``span(...)`` context-manager/decorator timing
  named engine phases into a process-wide accumulator and, when
  installed, a :class:`TraceCollector` that exports Chrome
  ``trace_event`` JSON (``--trace-out``);
- :mod:`.provenance` — manifests tying a stored result to the config
  digest, workload spec, seed, code version, cache stats, and phase
  timings that produced it;
- :mod:`.metrics` — the Prometheus exposition layer (moved here from
  ``repro.service.metrics``, which re-exports it) plus
  :func:`engine_metrics`, the simulation-core instrument panel.
"""

from .logging import (
    HumanFormatter,
    JsonFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
    logging_configured,
)
from .metrics import (
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    ServiceMetrics,
    engine_metrics,
)
from .provenance import (
    PROVENANCE_SCHEMA_VERSION,
    build_provenance,
    config_digest,
    git_describe,
    render_provenance,
)
from .tracing import (
    TraceCollector,
    current_collector,
    current_span_stack,
    phase_totals,
    reset_phase_totals,
    set_enabled,
    span,
    start_tracing,
    stop_tracing,
    tracing_enabled,
)

__all__ = [
    "get_logger",
    "configure_logging",
    "logging_configured",
    "StructuredLogger",
    "JsonFormatter",
    "HumanFormatter",
    "span",
    "TraceCollector",
    "start_tracing",
    "stop_tracing",
    "current_collector",
    "current_span_stack",
    "phase_totals",
    "reset_phase_totals",
    "set_enabled",
    "tracing_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ServiceMetrics",
    "EngineMetrics",
    "engine_metrics",
    "PROVENANCE_SCHEMA_VERSION",
    "build_provenance",
    "config_digest",
    "git_describe",
    "render_provenance",
]
