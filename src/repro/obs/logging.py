"""Structured logging for the simulation engine and service.

A thin, dependency-free layer over :mod:`logging` that every repro
subsystem shares.  Call sites log *events with fields*, not formatted
strings::

    log = get_logger("core.runner")
    log.info("run_done", workload="stereo", cap_w=120.0, wall_s=3.2)

and the installed handler renders them either human-readable::

    2026-08-05 12:00:00 INFO    repro.core.runner run_done cap_w=120.0 ...

or as JSON lines (one object per line) with a stable schema — the
keys ``ts``, ``level``, ``logger`` and ``event`` are always present,
every keyword argument rides along verbatim::

    {"cap_w": 120.0, "event": "run_done", "level": "info", ...}

Configuration comes from :func:`configure_logging` (the CLI's
``--log-level`` / ``--log-json``) or from the environment:

- ``REPRO_LOG_LEVEL`` — ``debug`` / ``info`` / ``warning`` / ``error``
  (default ``warning``, so library use is silent);
- ``REPRO_LOG_JSON`` — truthy (``1``/``true``/``yes``/``on``) switches
  the handler to JSON lines.

Records go to ``stderr`` by default so CLI table/JSON output on
``stdout`` stays machine-parseable.  Everything here is thread-safe:
handlers are installed once under a lock and stdlib logging serialises
emission.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
from typing import IO, Optional

__all__ = [
    "StructuredLogger",
    "JsonFormatter",
    "HumanFormatter",
    "get_logger",
    "configure_logging",
    "logging_configured",
]

#: The root of every repro logger; handlers are installed here only.
ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_TRUTHY = {"1", "true", "yes", "on"}

_configure_lock = threading.Lock()
_configured = False


def _env_level() -> int:
    raw = os.environ.get("REPRO_LOG_LEVEL", "warning").strip().lower()
    return _LEVELS.get(raw, logging.WARNING)


def _env_json() -> bool:
    return os.environ.get("REPRO_LOG_JSON", "").strip().lower() in _TRUTHY


def _coerce_level(level: "int | str") -> int:
    if isinstance(level, str):
        try:
            return _LEVELS[level.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
            ) from None
    return int(level)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event + fields."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a single JSON line."""
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                # Schema keys win over colliding field names.
                doc.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            doc.setdefault("exc_type", record.exc_info[0].__name__)
            doc.setdefault("exc", str(record.exc_info[1]))
        return json.dumps(doc, sort_keys=True, default=str)


class HumanFormatter(logging.Formatter):
    """``time LEVEL logger event k=v ...`` for terminals."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s %(message)s",
            datefmt="%Y-%m-%d %H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        """Render one record with fields appended as k=v pairs."""
        base = super().format(record)
        fields = getattr(record, "fields", None)
        if fields:
            pairs = " ".join(
                f"{k}={v!r}" if isinstance(v, str) else f"{k}={v}"
                for k, v in sorted(fields.items())
            )
            return f"{base} {pairs}"
        return base


class StructuredLogger:
    """Event + keyword-field logging facade over one stdlib logger."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        """The underlying stdlib logger's dotted name."""
        return self._logger.name

    @property
    def stdlib(self) -> logging.Logger:
        """The wrapped :class:`logging.Logger` (for level checks)."""
        return self._logger

    def is_enabled_for(self, level: "int | str") -> bool:
        """Whether a record at ``level`` would actually be emitted."""
        return self._logger.isEnabledFor(_coerce_level(level))

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields) -> None:
        """Emit a DEBUG record for ``event`` with structured fields."""
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        """Emit an INFO record for ``event`` with structured fields."""
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        """Emit a WARNING record for ``event`` with structured fields."""
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        """Emit an ERROR record for ``event`` with structured fields."""
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields) -> None:
        """Emit an ERROR record carrying the active exception info."""
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.log(
                logging.ERROR, event, exc_info=True, extra={"fields": fields}
            )


def configure_logging(
    level: "int | str | None" = None,
    json_mode: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
    force: bool = False,
) -> logging.Logger:
    """Install (once) the repro log handler and set the level.

    ``level``/``json_mode`` default to ``REPRO_LOG_LEVEL`` /
    ``REPRO_LOG_JSON``; ``stream`` defaults to ``stderr``.  The call is
    idempotent — repeated calls adjust level/format without stacking
    handlers — and ``force=True`` reinstalls the handler (used by tests
    to redirect the stream).  Returns the configured root logger.
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER_NAME)
    with _configure_lock:
        resolved_level = _env_level() if level is None else _coerce_level(level)
        resolved_json = _env_json() if json_mode is None else bool(json_mode)
        formatter: logging.Formatter = (
            JsonFormatter() if resolved_json else HumanFormatter()
        )
        ours = [
            h
            for h in root.handlers
            if getattr(h, "_repro_handler", False)
        ]
        if force:
            for h in ours:
                root.removeHandler(h)
            ours = []
        if not ours:
            handler = logging.StreamHandler(stream or sys.stderr)
            handler._repro_handler = True  # type: ignore[attr-defined]
            root.addHandler(handler)
            ours = [handler]
        for h in ours:
            h.setFormatter(formatter)
        root.setLevel(resolved_level)
        # Keep repro records out of any application root handler: this
        # layer owns its formatting end to end.
        root.propagate = False
        _configured = True
    return root


def logging_configured() -> bool:
    """Whether :func:`configure_logging` has run in this process."""
    return _configured


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for one subsystem (e.g. ``core.runner``).

    Lazily installs the handler from the environment on first use, so
    library consumers get ``REPRO_LOG_*`` behaviour without calling
    :func:`configure_logging` themselves.
    """
    if not _configured:
        configure_logging()
    if not name.startswith(ROOT_LOGGER_NAME):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))
