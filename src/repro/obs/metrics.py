"""Prometheus-style telemetry for the engine and the service.

A tiny, dependency-free metrics layer: counters, gauges (static or
callback-backed, optionally labelled), and cumulative histograms,
rendered in the Prometheus text exposition format (version 0.0.4) for
``GET /metrics``.  All mutation is thread-safe — the scheduler's
worker pool, the HTTP handler threads, and the simulation engine all
share these registries.

This module is the home of the primitives that used to live in
:mod:`repro.service.metrics` (which now re-exports them unchanged),
plus :class:`EngineMetrics` — a process-wide panel of *simulation
internals* (runs, control quanta, fast-forward activations, trace
simulations, rate-cache hits/misses, per-phase seconds) that the
engine increments directly and the service's ``/metrics`` endpoint
exposes alongside the queue/job series.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .tracing import phase_totals

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ServiceMetrics",
    "EngineMetrics",
    "engine_metrics",
    "TelemetryMetrics",
    "telemetry_metrics",
    "FleetMetrics",
    "fleet_metrics",
    "StreamMetrics",
    "stream_metrics",
    "ProfileMetrics",
    "profile_metrics",
    "BuildInfo",
    "BuildInfoMetrics",
    "build_info_metrics",
]

#: (metric name, labels, value)
Sample = Tuple[str, Dict[str, str], float]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    def esc(v: str) -> str:
        return str(v).replace("\\", "\\\\").replace('"', '\\"')

    inner = ",".join(f'{k}="{esc(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Metric:
    """Base: a named metric that can emit exposition samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def samples(self) -> List[Sample]:
        """Current ``(name, labels, value)`` samples for exposition."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value

    def samples(self) -> List[Sample]:
        """One unlabelled sample holding the current count."""
        return [(self.name, {}, self.value)]


class Gauge(Metric):
    """Point-in-time value: set directly or computed at scrape time.

    A callback returning a float yields one unlabelled sample; a
    callback returning a dict yields one sample per key, labelled with
    ``label_name``.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: Optional[Callable[[], "float | Dict[str, float]"]] = None,
        label_name: str = "state",
    ) -> None:
        super().__init__(name, help_text)
        self._value = 0.0
        self._callback = callback
        self._label_name = label_name

    def set(self, value: float) -> None:
        """Set the gauge (only meaningful without a callback)."""
        with self._lock:
            self._value = float(value)

    def samples(self) -> List[Sample]:
        """The stored value, or the callback's value(s) at scrape time."""
        if self._callback is None:
            with self._lock:
                return [(self.name, {}, self._value)]
        value = self._callback()
        if isinstance(value, dict):
            return [
                (self.name, {self._label_name: k}, float(v))
                for k, v in sorted(value.items())
            ]
        return [(self.name, {}, float(value))]


class Histogram(Metric):
    """Cumulative histogram with fixed upper-bound buckets."""

    kind = "histogram"

    DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        self._bounds = tuple(sorted(float(b) for b in buckets))
        self._counts = [0] * len(self._bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1

    def samples(self) -> List[Sample]:
        """Cumulative ``_bucket`` series plus ``_sum`` and ``_count``."""
        with self._lock:
            counts, total, s = list(self._counts), self._count, self._sum
        out: List[Sample] = []
        # _counts is already cumulative: observe() increments every
        # bucket whose bound admits the value.
        for bound, count in zip(self._bounds, counts):
            out.append(
                (f"{self.name}_bucket", {"le": _format_value(bound)}, count)
            )
        out.append((f"{self.name}_bucket", {"le": "+Inf"}, total))
        out.append((f"{self.name}_sum", {}, s))
        out.append((f"{self.name}_count", {}, total))
        return out


class BuildInfo(Metric):
    """Info-style gauge: one constant ``1`` sample carrying its labels.

    The Prometheus ``*_info`` convention — the payload is the label
    set (package version, git rev, schema versions), the value is
    always 1, and joins against it correlate any other series with
    the build that produced it.  :class:`Gauge`'s dict-callback form
    emits one sample per key under a single label name, which cannot
    express a multi-label constant — hence a dedicated metric.
    """

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str, labels: Dict[str, str]
    ) -> None:
        super().__init__(name, help_text)
        self._labels = {k: str(v) for k, v in labels.items()}

    @property
    def labels(self) -> Dict[str, str]:
        """The build identity this metric carries."""
        return dict(self._labels)

    def samples(self) -> List[Sample]:
        """The single constant sample, labels attached."""
        return [(self.name, dict(self._labels), 1.0)]


class MetricsRegistry:
    """Ordered collection of metrics with a text-format renderer."""

    def __init__(self) -> None:
        self._metrics: List[Metric] = []
        self._lock = threading.Lock()

    def register(self, metric: Metric) -> Metric:
        """Add a metric (names must be unique) and return it."""
        with self._lock:
            if any(m.name == metric.name for m in self._metrics):
                raise ValueError(f"duplicate metric name {metric.name!r}")
            self._metrics.append(metric)
        return metric

    def samples(self) -> List[Sample]:
        """Every registered metric's current samples, in order."""
        with self._lock:
            metrics = list(self._metrics)
        out: List[Sample] = []
        for metric in metrics:
            out.extend(metric.samples())
        return out

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics)
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, labels, value in metric.samples():
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


class EngineMetrics:
    """Simulation-core instrument panel (one per process).

    The engine increments these directly on its cold paths — nothing
    here runs per control quantum except a batched add at run end:

    - ``repro_engine_runs_total`` — completed :meth:`NodeRunner.run`
      calls;
    - ``repro_engine_quanta_total`` — control-loop iterations
      (controller actuations), added once per finished run;
    - ``repro_engine_fast_forward_total`` — steady-state fast-forward
      activations;
    - ``repro_engine_block_steps_total`` /
      ``repro_engine_block_quanta_total`` — stable segments retired by
      the block-step kernel, and the quanta inside them;
    - ``repro_engine_batch_runs_total`` /
      ``repro_engine_batch_quanta_total`` — runs that joined a
      multi-run batch march, and the quanta those marches retired;
    - ``repro_engine_worker_reuse_total`` — sweep runs served by a
      warm (already-initialized) pool worker;
    - ``repro_engine_traces_simulated_total`` — slice simulations that
      actually ran (rate-cache/memo misses);
    - ``repro_engine_rate_cache_hits_total`` /
      ``repro_engine_rate_cache_misses_total`` — persistent rate-cache
      lookups, process-wide across every :class:`RateCache` instance;
    - ``repro_engine_run_seconds`` — wall-clock histogram per run;
    - ``repro_engine_phase_seconds`` — cumulative seconds per span
      name, scraped live from the tracing phase accumulator;
    - ``repro_engine_effective_jobs`` — worker count the most recent
      sweep actually used (previously visible only in the provenance
      ``execution`` block).

    Worker *processes* (``jobs > 1`` sweeps) keep their own panels;
    the exposed values cover the scraped process, which for the
    service's default thread workers is the whole story.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry.register
        self.runs = reg(
            Counter("repro_engine_runs_total", "Completed simulation runs")
        )
        self.quanta = reg(
            Counter(
                "repro_engine_quanta_total",
                "Control-loop iterations (BMC controller actuations)",
            )
        )
        self.fast_forwards = reg(
            Counter(
                "repro_engine_fast_forward_total",
                "Steady-state fast-forward activations",
            )
        )
        self.block_steps = reg(
            Counter(
                "repro_engine_block_steps_total",
                "Stable-segment blocks retired by the block-step kernel",
            )
        )
        self.block_quanta = reg(
            Counter(
                "repro_engine_block_quanta_total",
                "Control quanta retired inside block-step kernel blocks",
            )
        )
        self.batch_runs = reg(
            Counter(
                "repro_engine_batch_runs_total",
                "Runs that retired at least one multi-run batched segment",
            )
        )
        self.batch_quanta = reg(
            Counter(
                "repro_engine_batch_quanta_total",
                "Control quanta retired inside multi-run batch marches",
            )
        )
        self.worker_reuse = reg(
            Counter(
                "repro_engine_worker_reuse_total",
                "Sweep runs served by an already-warm pool worker",
            )
        )
        self.traces_simulated = reg(
            Counter(
                "repro_engine_traces_simulated_total",
                "Trace-slice simulations that actually ran (cache misses)",
            )
        )
        self.rate_cache_hits = reg(
            Counter(
                "repro_engine_rate_cache_hits_total",
                "Persistent rate-cache lookups served from cache",
            )
        )
        self.rate_cache_misses = reg(
            Counter(
                "repro_engine_rate_cache_misses_total",
                "Persistent rate-cache lookups that missed",
            )
        )
        self.run_seconds = reg(
            Histogram(
                "repro_engine_run_seconds",
                "Wall-clock seconds per simulation run",
                buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                         30.0, 60.0),
            )
        )
        self.phase_seconds = reg(
            Gauge(
                "repro_engine_phase_seconds",
                "Cumulative wall-clock seconds per instrumented span",
                callback=self._phase_seconds,
                label_name="phase",
            )
        )
        self.effective_jobs = reg(
            Gauge(
                "repro_engine_effective_jobs",
                "Worker count the most recent sweep actually used after "
                "the single-core / tiny-chunk fallbacks",
            )
        )

    @staticmethod
    def _phase_seconds() -> Dict[str, float]:
        return {
            name: acc["seconds"] for name, acc in phase_totals().items()
        }

    def render(self) -> str:
        """Text exposition of the engine panel."""
        return self.registry.render()


_engine_metrics_lock = threading.Lock()
_engine_metrics: "EngineMetrics | None" = None


def engine_metrics() -> EngineMetrics:
    """The process-wide :class:`EngineMetrics` singleton."""
    global _engine_metrics
    if _engine_metrics is None:
        with _engine_metrics_lock:
            if _engine_metrics is None:
                _engine_metrics = EngineMetrics()
    return _engine_metrics


class TelemetryMetrics:
    """In-run telemetry instrument panel (one per process).

    The sampler is pure bookkeeping on the hot path; these series are
    incremented **in batch, once per finished run** (and once per
    detector scan), never per control quantum:

    - ``repro_telemetry_runs_total`` — runs that recorded a timeline;
    - ``repro_telemetry_samples_total`` — raw sampler ``record`` calls
      folded into buckets;
    - ``repro_telemetry_points_total`` — timeline points held at run
      end (post-decimation);
    - ``repro_telemetry_decimations_total`` — 2× ring decimation
      passes across all channels;
    - ``repro_telemetry_channels`` — channels in the most recent
      timeline;
    - ``repro_telemetry_detections_total{phenomenon=...}`` — detector
      hits by phenomenon name (``freq_floor``, ``cap_overshoot``,
      ``energy_knee``).
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry.register
        self.runs = reg(
            Counter(
                "repro_telemetry_runs_total",
                "Runs that recorded a telemetry timeline",
            )
        )
        self.samples = reg(
            Counter(
                "repro_telemetry_samples_total",
                "Raw telemetry sampler record() calls",
            )
        )
        self.points = reg(
            Counter(
                "repro_telemetry_points_total",
                "Timeline points held at run end (post-decimation)",
            )
        )
        self.decimations = reg(
            Counter(
                "repro_telemetry_decimations_total",
                "2x ring decimation passes across all channels",
            )
        )
        self.channels = reg(
            Gauge(
                "repro_telemetry_channels",
                "Channels recorded in the most recent timeline",
            )
        )
        self._detections_lock = threading.Lock()
        self._detections: Dict[str, float] = {}
        self.detections = reg(
            Gauge(
                "repro_telemetry_detections_total",
                "Detector hits by phenomenon",
                callback=self._detection_counts,
                label_name="phenomenon",
            )
        )

    def _detection_counts(self) -> Dict[str, float]:
        with self._detections_lock:
            return dict(self._detections)

    def observe_run(self, sampler, timeline) -> None:
        """Batch-record one finished run's sampler + timeline stats."""
        self.runs.inc()
        self.samples.inc(sampler.samples)
        channels = list(timeline.channels.values())
        self.points.inc(sum(len(c) for c in channels))
        self.decimations.inc(sum(c.decimations for c in channels))
        self.channels.set(len(channels))

    def observe_detections(self, phenomena: "Sequence[str]") -> None:
        """Count detector hits, labelled by phenomenon name."""
        with self._detections_lock:
            for name in phenomena:
                self._detections[name] = self._detections.get(name, 0.0) + 1.0

    def render(self) -> str:
        """Text exposition of the telemetry panel."""
        return self.registry.render()


_telemetry_metrics_lock = threading.Lock()
_telemetry_metrics: "TelemetryMetrics | None" = None


def telemetry_metrics() -> TelemetryMetrics:
    """The process-wide :class:`TelemetryMetrics` singleton."""
    global _telemetry_metrics
    if _telemetry_metrics is None:
        with _telemetry_metrics_lock:
            if _telemetry_metrics is None:
                _telemetry_metrics = TelemetryMetrics()
    return _telemetry_metrics


class StreamMetrics:
    """Live-streaming instrument panel (one per process).

    Every series is callback-backed from the process-wide
    :class:`~repro.obs.stream.EventBus`, so scrapes always see current
    values and publishing pays no metric bookkeeping at all:

    - ``repro_stream_events_total`` — events published across all
      topics (telemetry samples, detections, lifecycle, fleet health);
    - ``repro_stream_dropped_total`` — events dropped by slow
      subscribers under drop-oldest backpressure;
    - ``repro_stream_subscribers`` — live subscriptions bus-wide.
    """

    def __init__(self) -> None:
        # Local import: repro.obs.stream imports nothing from here, but
        # keeping the edge one-way at module load avoids a cycle if it
        # ever does.
        from .stream import event_bus

        self.registry = MetricsRegistry()
        reg = self.registry.register
        self.events = reg(
            Gauge(
                "repro_stream_events_total",
                "Events published to the live stream bus",
                callback=lambda: float(event_bus().published_total()),
            )
        )
        self.dropped = reg(
            Gauge(
                "repro_stream_dropped_total",
                "Stream events dropped by slow subscribers "
                "(drop-oldest backpressure)",
                callback=lambda: float(event_bus().dropped_total()),
            )
        )
        self.subscribers = reg(
            Gauge(
                "repro_stream_subscribers",
                "Live stream subscriptions across all topics",
                callback=lambda: float(event_bus().subscriber_count()),
            )
        )

    def render(self) -> str:
        """Text exposition of the stream panel."""
        return self.registry.render()


_stream_metrics_lock = threading.Lock()
_stream_metrics: "StreamMetrics | None" = None


def stream_metrics() -> StreamMetrics:
    """The process-wide :class:`StreamMetrics` singleton."""
    global _stream_metrics
    if _stream_metrics is None:
        with _stream_metrics_lock:
            if _stream_metrics is None:
                _stream_metrics = StreamMetrics()
    return _stream_metrics


class ProfileMetrics:
    """Sampling-profiler instrument panel (one per process).

    The profiler batches into these once per :meth:`stop` — nothing is
    recorded per sample tick beyond its own in-memory tallies:

    - ``repro_profile_samples_total`` — stack samples taken;
    - ``repro_profile_runs_total`` — profiler start/stop sessions;
    - ``repro_profile_quantum_cost_seconds`` — histogram of attributed
      wall seconds per engine control quantum (phase seconds divided
      by the quanta retired while profiling), one observation per
      profiled phase;
    - ``repro_profile_phase_samples`` — samples attributed to each
      span phase in the most recent session.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry.register
        self.samples = reg(
            Counter(
                "repro_profile_samples_total",
                "Sampling-profiler stack samples taken",
            )
        )
        self.runs = reg(
            Counter(
                "repro_profile_runs_total",
                "Sampling-profiler sessions completed",
            )
        )
        self.quantum_cost = reg(
            Histogram(
                "repro_profile_quantum_cost_seconds",
                "Attributed wall seconds per engine control quantum",
                buckets=(1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4,
                         5e-4, 1e-3, 1e-2),
            )
        )
        self._phases_lock = threading.Lock()
        self._phases: Dict[str, float] = {}
        self.phase_samples = reg(
            Gauge(
                "repro_profile_phase_samples",
                "Stack samples per span phase in the latest session",
                callback=self._phase_counts,
                label_name="phase",
            )
        )

    def _phase_counts(self) -> Dict[str, float]:
        with self._phases_lock:
            return dict(self._phases)

    def observe_session(
        self,
        samples: int,
        phases: Dict[str, int],
        per_quantum_s: "Dict[str, float]",
    ) -> None:
        """Batch-record one finished profiling session."""
        self.samples.inc(samples)
        self.runs.inc()
        with self._phases_lock:
            self._phases = {k: float(v) for k, v in phases.items()}
        for cost in per_quantum_s.values():
            self.quantum_cost.observe(cost)

    def render(self) -> str:
        """Text exposition of the profiler panel."""
        return self.registry.render()


_profile_metrics_lock = threading.Lock()
_profile_metrics: "ProfileMetrics | None" = None


def profile_metrics() -> ProfileMetrics:
    """The process-wide :class:`ProfileMetrics` singleton."""
    global _profile_metrics
    if _profile_metrics is None:
        with _profile_metrics_lock:
            if _profile_metrics is None:
                _profile_metrics = ProfileMetrics()
    return _profile_metrics


class FleetMetrics:
    """Fleet-simulation instrument panel (one per process).

    :class:`~repro.fleet.engine.FleetEngine` adds to these **once per
    finished run** — never per tick — so the panel costs nothing on
    the vectorized hot path:

    - ``repro_fleet_runs_total`` — completed fleet runs;
    - ``repro_fleet_steps_total`` — fleet control ticks simulated;
    - ``repro_fleet_node_steps_total`` — node-steps (ticks x nodes),
      the unit ``scripts/bench_fleet.py`` rates;
    - ``repro_fleet_rebalances_total`` — budget-tree re-divisions that
      actually moved caps;
    - ``repro_fleet_escalations_total`` — cascading cap escalations
      across all tree levels;
    - ``repro_fleet_nodes`` — node count of the most recent run.

    When health rollups are enabled (:mod:`repro.fleet.health`), the
    run-end :meth:`observe_health` batch adds the
    ``repro_fleet_health_*`` series: fleet headroom (allocation minus
    drawn power), the fraction of nodes pinned at their cap floor,
    the SLO-debt accrual rate, the deepest escalation level reached,
    and a per-rack headroom histogram.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry.register
        self.runs = reg(
            Counter("repro_fleet_runs_total", "Completed fleet runs")
        )
        self.steps = reg(
            Counter(
                "repro_fleet_steps_total", "Fleet control ticks simulated"
            )
        )
        self.node_steps = reg(
            Counter(
                "repro_fleet_node_steps_total",
                "Node-steps simulated (ticks x nodes)",
            )
        )
        self.rebalances = reg(
            Counter(
                "repro_fleet_rebalances_total",
                "Budget-tree re-divisions that moved caps",
            )
        )
        self.escalations = reg(
            Counter(
                "repro_fleet_escalations_total",
                "Cascading cap escalations across all tree levels",
            )
        )
        self.nodes = reg(
            Gauge("repro_fleet_nodes", "Node count of the most recent run")
        )
        self.health_headroom = reg(
            Gauge(
                "repro_fleet_health_headroom_w",
                "Mean fleet headroom (allocation - power, W) over the "
                "most recent run",
            )
        )
        self.health_capfloor = reg(
            Gauge(
                "repro_fleet_health_capfloor_frac",
                "Mean fraction of nodes pinned at their cap floor over "
                "the most recent run",
            )
        )
        self.health_slo_debt_rate = reg(
            Gauge(
                "repro_fleet_health_slo_debt_rate_w",
                "Mean SLO-debt accrual rate (W) over the most recent run",
            )
        )
        self.health_escalation = reg(
            Gauge(
                "repro_fleet_health_escalation_level",
                "Deepest budget-tree escalation level reached in the "
                "most recent run",
            )
        )
        self.health_rack_headroom = reg(
            Histogram(
                "repro_fleet_health_rack_headroom_w",
                "Per-rack mean headroom (W) at the end of each run",
                buckets=(-1000.0, -100.0, -10.0, 0.0, 10.0, 100.0,
                         1000.0, 10000.0),
            )
        )

    def observe_health(
        self,
        headroom_w: float,
        capfloor_frac: float,
        slo_debt_rate_w: float,
        escalation_level: float,
        rack_headroom_w: "Sequence[float]",
    ) -> None:
        """Batch-record one run's health summary (run end, never per tick)."""
        self.health_headroom.set(headroom_w)
        self.health_capfloor.set(capfloor_frac)
        self.health_slo_debt_rate.set(slo_debt_rate_w)
        self.health_escalation.set(escalation_level)
        for value in rack_headroom_w:
            self.health_rack_headroom.observe(float(value))

    def render(self) -> str:
        """Text exposition of the fleet panel."""
        return self.registry.render()


_fleet_metrics_lock = threading.Lock()
_fleet_metrics: "FleetMetrics | None" = None


def fleet_metrics() -> FleetMetrics:
    """The process-wide :class:`FleetMetrics` singleton."""
    global _fleet_metrics
    if _fleet_metrics is None:
        with _fleet_metrics_lock:
            if _fleet_metrics is None:
                _fleet_metrics = FleetMetrics()
    return _fleet_metrics


class BuildInfoMetrics:
    """Build-identity panel: the ``repro_build_info`` constant gauge.

    Archived metric snapshots (and plain scrapes) become correlatable
    across commits: the label set carries the package version, the git
    revision of the source tree (``unknown`` outside a checkout), and
    the schema versions of every versioned persistence format —
    provenance manifests, telemetry timelines, and the observability
    archive.
    """

    def __init__(self) -> None:
        # Local imports: provenance shells out to git, and the archive
        # module imports from this package — resolving both lazily at
        # first scrape keeps module load cheap and cycle-free.
        from .. import __version__
        from .archive import ARCHIVE_SCHEMA_VERSION
        from .provenance import PROVENANCE_SCHEMA_VERSION, git_describe
        from .timeseries import TIMELINE_SCHEMA_VERSION

        self.registry = MetricsRegistry()
        self.build_info = self.registry.register(
            BuildInfo(
                "repro_build_info",
                "Build identity of this process (constant 1)",
                {
                    "version": __version__,
                    "git": git_describe() or "unknown",
                    "provenance_schema": str(PROVENANCE_SCHEMA_VERSION),
                    "timeline_schema": str(TIMELINE_SCHEMA_VERSION),
                    "archive_schema": str(ARCHIVE_SCHEMA_VERSION),
                },
            )
        )

    def render(self) -> str:
        """Text exposition of the build-identity panel."""
        return self.registry.render()


_build_info_metrics_lock = threading.Lock()
_build_info_metrics: "BuildInfoMetrics | None" = None


def build_info_metrics() -> BuildInfoMetrics:
    """The process-wide :class:`BuildInfoMetrics` singleton."""
    global _build_info_metrics
    if _build_info_metrics is None:
        with _build_info_metrics_lock:
            if _build_info_metrics is None:
                _build_info_metrics = BuildInfoMetrics()
    return _build_info_metrics


class ServiceMetrics:
    """The experiment service's standard instrument panel.

    Gauges for queue depth, per-state job counts, and rate-cache
    hit/miss totals are callback-backed — :meth:`bind` wires them to
    the live scheduler at service start so scrapes always see current
    values without any bookkeeping on the hot path.

    :meth:`render` appends the process-wide :class:`EngineMetrics`
    panel, so one ``/metrics`` scrape covers the service *and* the
    simulation core.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry.register
        self.jobs_submitted = reg(
            Counter("repro_jobs_submitted_total", "Jobs accepted via submit()")
        )
        self.jobs_completed = reg(
            Counter("repro_jobs_completed_total", "Jobs that reached DONE")
        )
        self.jobs_failed = reg(
            Counter(
                "repro_jobs_failed_total",
                "Jobs that exhausted their retry budget",
            )
        )
        self.job_retries = reg(
            Counter(
                "repro_job_retries_total",
                "Worker crashes that re-queued a job with backoff",
            )
        )
        self.dedup_hits = reg(
            Counter(
                "repro_store_dedup_hits_total",
                "Submissions answered from the result store without "
                "re-simulation",
            )
        )
        self.sweep_seconds = reg(
            Histogram(
                "repro_sweep_wall_seconds",
                "Wall-clock seconds per completed sweep job",
            )
        )
        self.submit_seconds = reg(
            Histogram(
                "repro_submit_seconds",
                "Server-side seconds spent handling one POST /jobs",
                buckets=(
                    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 2.5,
                ),
            )
        )
        self._queue_depth = Gauge(
            "repro_queue_depth", "Jobs queued and not yet running"
        )
        self._jobs_by_state = Gauge(
            "repro_jobs", "Known jobs by lifecycle state", label_name="state"
        )
        self._cache_hits = Gauge(
            "repro_rate_cache_hits_total",
            "Rate-cache lookups served from the shared cache",
        )
        self._cache_misses = Gauge(
            "repro_rate_cache_misses_total",
            "Rate-cache lookups that required trace simulation",
        )
        self._admission_shed = Gauge(
            "repro_admission_shed_total",
            "Submissions shed by admission control, by reason",
            label_name="reason",
        )
        self._admission_queue_limit = Gauge(
            "repro_admission_queue_limit",
            "Queue depth beyond which submissions shed with 503",
        )
        self._admission_clients = Gauge(
            "repro_admission_clients",
            "Distinct clients currently tracked by the rate limiter",
        )
        self._shards = Gauge(
            "repro_service_shards",
            "Worker shard processes the scheduler dispatches to "
            "(0 = in-process execution)",
        )
        for g in (
            self._queue_depth,
            self._jobs_by_state,
            self._cache_hits,
            self._cache_misses,
            self._admission_shed,
            self._admission_queue_limit,
            self._admission_clients,
            self._shards,
        ):
            self.registry.register(g)

    def bind(
        self,
        queue_depth: Callable[[], float],
        jobs_by_state: Callable[[], Dict[str, float]],
        cache_hits: Callable[[], float],
        cache_misses: Callable[[], float],
    ) -> None:
        """Attach the scrape-time callbacks (called once by the scheduler)."""
        self._queue_depth._callback = queue_depth
        self._jobs_by_state._callback = jobs_by_state
        self._cache_hits._callback = cache_hits
        self._cache_misses._callback = cache_misses

    def bind_admission(self, controller) -> None:
        """Expose an :class:`~repro.service.admission.AdmissionController`.

        Called once when the service wires its admission gate; scrapes
        then read the live shed counters and client table size.
        """
        self._admission_shed._callback = controller.shed_counts
        self._admission_queue_limit._callback = (
            lambda: float(controller.max_queue_depth)
        )
        self._admission_clients._callback = (
            lambda: float(controller.client_count())
        )

    def bind_shards(self, effective_shards: Callable[[], float]) -> None:
        """Expose the scheduler's effective shard count."""
        self._shards._callback = effective_shards

    #: The panels one ``/metrics`` scrape covers, in exposition order.
    @staticmethod
    def _panels() -> "List[MetricsRegistry]":
        return [
            build_info_metrics().registry,
            engine_metrics().registry,
            telemetry_metrics().registry,
            fleet_metrics().registry,
            stream_metrics().registry,
            profile_metrics().registry,
        ]

    def render(self) -> str:
        """Text exposition: service + build-info + engine + telemetry
        + fleet + stream + profile panels."""
        return self.registry.render() + "".join(
            panel.render() for panel in self._panels()
        )

    def sample_all(self) -> List[Sample]:
        """Every panel's current ``(name, labels, value)`` samples.

        The same coverage as :meth:`render`, as structured samples —
        this is what the archive's background recorder scrapes, so a
        persisted snapshot carries exactly what ``GET /metrics``
        would have shown at that instant.
        """
        out = self.registry.samples()
        for panel in self._panels():
            out.extend(panel.samples())
        return out
