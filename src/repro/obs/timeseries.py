"""In-run telemetry timelines: bounded, downsampling time-series.

The paper's evidence chain is time-resolved measurement — a Watts Up!
meter sampling wall power, average core frequency, and PAPI counters
per run.  Aggregates (PR 3's provenance manifests) cannot show the
phenomena *inside* a run: the 1,200 MHz frequency floor at caps
≤ 130 W, the DCM control loop's overshoot and settling, the energy
knee.  This module records those time series without unbounded memory
and without perturbing the simulation:

- :class:`SeriesChannel` — a fixed-capacity recorder of
  duration-weighted interval samples.  When full it decimates 2×
  (adjacent intervals merge into one, duration-weighted, min/max
  preserved), so a channel covers an arbitrarily long run at steadily
  coarser resolution while its time integral stays exact.
- :class:`RunTimeline` — the named channels of one run plus metadata,
  with JSON/CSV round-trips and rep merging.
- :class:`TelemetrySampler` — aggregates the runner's per-quantum
  state onto a configurable simulated-time period.  A steady-state
  fast-forwarded interval arrives as one long constant sample, so
  timelines have **no gaps** across fast-forwards and the power
  channel's integral still matches the scalar energy path.
- :class:`TelemetryConfig` — the knobs (`REPRO_TELEMETRY`,
  `REPRO_TELEMETRY_PERIOD`, `REPRO_TELEMETRY_CAPACITY`, or the CLI's
  ``--telemetry-period`` / ``--no-telemetry``).

Telemetry is pure observation: it draws no random numbers and touches
no model state, so results are bit-identical with sampling on or off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SimulationError
from .stream import current_stream, event_bus

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "SeriesPoint",
    "SeriesChannel",
    "RunTimeline",
    "TelemetryConfig",
    "TelemetrySampler",
    "timeline_to_dict",
    "timeline_from_dict",
]

TIMELINE_SCHEMA_VERSION = 1

#: Channels every run records, with their units (insertion order is
#: the presentation order everywhere downstream).
STANDARD_CHANNELS: Dict[str, str] = {
    "power_w": "W",
    "freq_mhz": "MHz",
    "pstate": "index",
    "duty": "fraction",
    "c0_frac": "fraction",
    "temp_c": "degC",
    "l1_mpki": "misses/kinstr",
    "l2_mpki": "misses/kinstr",
    "l3_mpki": "misses/kinstr",
    "dtlb_mpki": "misses/kinstr",
    "itlb_mpki": "misses/kinstr",
}

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}


def _sig(value: float) -> float:
    """Round to 8 significant digits for compact, stable JSON."""
    return float(f"{float(value):.8g}")


class SeriesPoint(NamedTuple):
    """One duration-weighted interval sample of a channel.

    A NamedTuple rather than a frozen dataclass: the engine constructs
    one per flushed telemetry bucket inside the run loop, and tuple
    construction is several times cheaper while keeping the field API,
    immutability, and value-equality semantics unchanged.
    """

    t_s: float
    dt_s: float
    mean: float
    vmin: float
    vmax: float

    @property
    def end_s(self) -> float:
        """The instant this interval's coverage ends."""
        return self.t_s + self.dt_s


class SeriesChannel:
    """Bounded time series of duration-weighted interval samples.

    ``add`` appends an interval ``[t_s, t_s + dt_s)`` during which the
    value averaged ``mean`` (bounded by ``vmin``/``vmax``).  Once
    ``capacity`` points accumulate, adjacent pairs merge (duration-
    weighted mean, min of mins, max of maxes) — memory stays bounded,
    coverage stays gap-free, and ``integral()`` is preserved exactly up
    to float associativity.
    """

    __slots__ = ("name", "unit", "capacity", "_points", "decimations")

    def __init__(self, name: str, unit: str = "", capacity: int = 256) -> None:
        if capacity < 8:
            raise SimulationError("channel capacity must be at least 8")
        self.name = name
        self.unit = unit
        self.capacity = int(capacity)
        self._points: List[SeriesPoint] = []
        self.decimations = 0

    def __len__(self) -> int:
        return len(self._points)

    def add(
        self,
        t_s: float,
        dt_s: float,
        mean: float,
        vmin: Optional[float] = None,
        vmax: Optional[float] = None,
    ) -> None:
        """Append one interval sample (decimating 2× when full)."""
        if dt_s < 0:
            raise SimulationError("sample duration must be non-negative")
        vmin = mean if vmin is None else vmin
        vmax = mean if vmax is None else vmax
        if len(self._points) >= self.capacity:
            self._decimate()
        self._points.append(
            SeriesPoint(float(t_s), float(dt_s), float(mean), float(vmin),
                        float(vmax))
        )

    def add_block(self, points: "List[SeriesPoint]") -> None:
        """Append pre-built points exactly as sequential :meth:`add` calls.

        The block-step kernel builds its flushed buckets as
        :class:`SeriesPoint` tuples (already-float fields, non-negative
        durations) and lands them here in one call per channel.  Below
        capacity that is a plain ``extend``; otherwise each point is
        appended individually so 2× decimation fires at the same moments
        a sequence of :meth:`add` calls would fire it.
        """
        if len(self._points) + len(points) <= self.capacity:
            self._points.extend(points)
            return
        for p in points:
            if len(self._points) >= self.capacity:
                self._decimate()
            self._points.append(p)

    def _decimate(self) -> None:
        pts = self._points
        merged: List[SeriesPoint] = []
        for i in range(0, len(pts) - 1, 2):
            merged.append(_merge_pair(pts[i], pts[i + 1]))
        if len(pts) % 2:
            merged.append(pts[-1])
        self._points = merged
        self.decimations += 1

    def points(self) -> List[SeriesPoint]:
        """A snapshot of the current points, oldest first."""
        return list(self._points)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def duration_s(self) -> float:
        """Total covered simulated time."""
        return sum(p.dt_s for p in self._points)

    def integral(self) -> float:
        """``sum(mean * dt)`` — for the power channel, Joules."""
        return sum(p.mean * p.dt_s for p in self._points)

    def time_weighted_mean(self) -> float:
        """Duration-weighted mean over the whole channel."""
        total = self.duration_s()
        if total <= 0:
            raise SimulationError(f"channel {self.name!r} covers no time")
        return self.integral() / total

    def vmin(self) -> float:
        """Smallest value observed (pre-decimation minima survive)."""
        if not self._points:
            raise SimulationError(f"channel {self.name!r} is empty")
        return min(p.vmin for p in self._points)

    def vmax(self) -> float:
        """Largest value observed (pre-decimation maxima survive)."""
        if not self._points:
            raise SimulationError(f"channel {self.name!r} is empty")
        return max(p.vmax for p in self._points)

    def summary(self) -> dict:
        """JSON-ready headline statistics for this channel."""
        if not self._points:
            return {"points": 0}
        return {
            "points": len(self._points),
            "unit": self.unit,
            "t0_s": _sig(self._points[0].t_s),
            "t1_s": _sig(self._points[-1].end_s),
            "min": _sig(self.vmin()),
            "mean": _sig(self.time_weighted_mean()),
            "max": _sig(self.vmax()),
            "decimations": self.decimations,
        }

    # ------------------------------------------------------------------
    # Resampling and merging
    # ------------------------------------------------------------------

    @staticmethod
    def _ramp(span: np.ndarray) -> np.ndarray:
        """``[0..span[0]-1, 0..span[1]-1, ...]`` as one flat array."""
        total = int(span.sum())
        offsets = np.repeat(np.cumsum(span) - span, span)
        return np.arange(total) - offsets

    def _resample_columns(self, n: int, end: float):
        """``(means, mins, maxs, covered)`` arrays for ``n`` uniform bins.

        Vectorised projection onto the grid.  Bit-identical to the
        historical per-point Python loop: per-(point, bin) contributions
        are expanded in point order and accumulated with unbuffered
        ``np.add.at``, so each bin's weighted sum folds in exactly the
        order the scalar ``wsum[b] += mean * overlap`` statements did.
        Empty bins carry the nearest preceding mean (seeded from the
        first point) so renderings stay gap-free.
        """
        pts = self._points
        width = end / n
        m = len(pts)
        t = np.fromiter((p.t_s for p in pts), np.float64, count=m)
        dt = np.fromiter((p.dt_s for p in pts), np.float64, count=m)
        mean = np.fromiter((p.mean for p in pts), np.float64, count=m)
        vmin = np.fromiter((p.vmin for p in pts), np.float64, count=m)
        vmax = np.fromiter((p.vmax for p in pts), np.float64, count=m)
        live = dt > 0
        t, dt, mean, vmin, vmax = (
            t[live], dt[live], mean[live], vmin[live], vmax[live]
        )
        end_pts = t + dt
        lo = np.clip((t / width).astype(np.int64), 0, n - 1)
        hi = np.clip(((end_pts - 1e-12) / width).astype(np.int64), 0, n - 1)
        span = hi - lo + 1
        # One row per (point, bin) pair, in point order.
        bins = np.repeat(lo, span) + self._ramp(span)
        idx = np.repeat(np.arange(len(t)), span)
        b0 = bins * width
        b1 = (bins + 1) * width
        overlap = np.minimum(end_pts[idx], b1) - np.maximum(t[idx], b0)
        keep = overlap > 0
        bins, idx, overlap = bins[keep], idx[keep], overlap[keep]
        wsum = np.zeros(n)
        cover = np.zeros(n)
        mins = np.full(n, np.inf)
        maxs = np.full(n, -np.inf)
        np.add.at(wsum, bins, mean[idx] * overlap)
        np.add.at(cover, bins, overlap)
        np.minimum.at(mins, bins, vmin[idx])
        np.maximum.at(maxs, bins, vmax[idx])
        covered = cover > 0
        means = np.empty(n)
        np.divide(wsum, cover, out=means, where=covered)
        # Gap fill: each uncovered bin repeats the previous covered mean.
        if not covered.all():
            seed = self._points[0].mean
            filled = np.where(covered, means, np.nan)
            carry = np.concatenate(([seed], filled))
            order = np.maximum.accumulate(
                np.where(np.isnan(carry), 0, np.arange(n + 1))
            )
            means = carry[order][1:]
            mins = np.where(covered, mins, means)
            maxs = np.where(covered, maxs, means)
        return means, mins, maxs, covered

    def resample(self, n: int, t1_s: Optional[float] = None) -> List[SeriesPoint]:
        """Project onto ``n`` uniform bins over ``[0, t1_s]``.

        Bin means are coverage-weighted from the overlapping intervals
        (integral-preserving); bins with no coverage carry the nearest
        preceding value so renderings stay gap-free.
        """
        if n <= 0:
            raise SimulationError("resample bin count must be positive")
        if not self._points:
            return []
        end = float(t1_s) if t1_s is not None else self._points[-1].end_s
        if end <= 0:
            return []
        width = end / n
        means, mins, maxs, _ = self._resample_columns(n, end)
        return [
            SeriesPoint(b * width, width, means[b], mins[b], maxs[b])
            for b in range(n)
        ]

    @classmethod
    def merge(cls, channels: "Sequence[SeriesChannel]") -> "SeriesChannel":
        """Average several recordings of the same channel (rep merge).

        Channels are projected onto a common uniform grid spanning the
        longest recording and averaged bin-wise; ``vmin``/``vmax``
        envelope every contributor.  The grids fold as arrays, in
        channel order, so the result is bit-identical to the historical
        per-bin ``sum(...) / len`` loop.
        """
        channels = [c for c in channels if len(c)]
        if not channels:
            raise SimulationError("cannot merge zero non-empty channels")
        if len({c.name for c in channels}) != 1:
            raise SimulationError("merge mixes differently named channels")
        first = channels[0]
        if len(channels) == 1:
            out = cls(first.name, first.unit, first.capacity)
            out._points = first.points()
            out.decimations = first.decimations
            return out
        end = max(c._points[-1].end_s for c in channels)
        n = min(max(len(c) for c in channels), first.capacity)
        width = end / n
        grids = [c._resample_columns(n, end) for c in channels]
        # Same association order as ``sum(p.mean for p in pts)``: the
        # builtin starts at 0 and folds left-to-right over channels.
        acc = 0.0 + grids[0][0]
        mins = grids[0][1].copy()
        maxs = grids[0][2].copy()
        for means_g, mins_g, maxs_g, _ in grids[1:]:
            acc = acc + means_g
            np.minimum(mins, mins_g, out=mins)
            np.maximum(maxs, maxs_g, out=maxs)
        means = acc / len(grids)
        out = cls(first.name, first.unit, first.capacity)
        for b in range(n):
            out.add(b * width, width, means[b], mins[b], maxs[b])
        return out

    # ------------------------------------------------------------------
    # Serialisation (columnar, compact)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Columnar JSON-ready representation."""
        return {
            "unit": self.unit,
            "capacity": self.capacity,
            "decimations": self.decimations,
            "t": [_sig(p.t_s) for p in self._points],
            "dt": [_sig(p.dt_s) for p in self._points],
            "mean": [_sig(p.mean) for p in self._points],
            "min": [_sig(p.vmin) for p in self._points],
            "max": [_sig(p.vmax) for p in self._points],
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "SeriesChannel":
        """Inverse of :meth:`to_dict`."""
        try:
            out = cls(name, data.get("unit", ""), int(data.get("capacity", 256)))
            out.decimations = int(data.get("decimations", 0))
            cols = (data["t"], data["dt"], data["mean"], data["min"], data["max"])
            if len({len(c) for c in cols}) != 1:
                raise SimulationError(
                    f"channel {name!r} has ragged columns"
                )
            out._points = [
                SeriesPoint(float(t), float(dt), float(m), float(lo), float(hi))
                for t, dt, m, lo, hi in zip(*cols)
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed channel {name!r}: {exc}") from exc
        return out


def _merge_pair(a: SeriesPoint, b: SeriesPoint) -> SeriesPoint:
    dt = a.dt_s + b.dt_s
    if dt <= 0:
        mean = (a.mean + b.mean) / 2.0
    else:
        mean = (a.mean * a.dt_s + b.mean * b.dt_s) / dt
    return SeriesPoint(
        a.t_s, dt, mean, min(a.vmin, b.vmin), max(a.vmax, b.vmax)
    )


@dataclass
class RunTimeline:
    """All sampled channels of one run (or a rep-merged average)."""

    workload: str
    cap_w: Optional[float]
    period_s: float
    channels: Dict[str, SeriesChannel] = field(default_factory=dict)
    #: How many repetitions were merged into this timeline (1 = raw).
    reps: int = 1

    @property
    def cap_label(self) -> str:
        """Row label: the cap in watts, or 'baseline'."""
        return "baseline" if self.cap_w is None else f"{self.cap_w:.0f}"

    def channel(self, name: str) -> SeriesChannel:
        """One channel by name."""
        try:
            return self.channels[name]
        except KeyError:
            raise SimulationError(
                f"timeline has no channel {name!r}; available: "
                f"{sorted(self.channels)}"
            ) from None

    def names(self) -> List[str]:
        """Channel names in recording order."""
        return list(self.channels)

    def duration_s(self) -> float:
        """Covered simulated time (the longest channel's coverage)."""
        return max((c.duration_s() for c in self.channels.values()), default=0.0)

    def summary(self) -> dict:
        """JSON-ready per-channel headline statistics."""
        return {
            "workload": self.workload,
            "cap_w": self.cap_w,
            "reps": self.reps,
            "period_s": _sig(self.period_s),
            "duration_s": _sig(self.duration_s()),
            "channels": {n: c.summary() for n, c in self.channels.items()},
        }

    @classmethod
    def merge(cls, timelines: "Sequence[RunTimeline]") -> "RunTimeline":
        """Average repetition timelines channel-by-channel."""
        timelines = list(timelines)
        if not timelines:
            raise SimulationError("cannot merge zero timelines")
        first = timelines[0]
        if len(timelines) == 1:
            return first
        out = cls(
            workload=first.workload,
            cap_w=first.cap_w,
            period_s=first.period_s,
            reps=sum(t.reps for t in timelines),
        )
        for name in first.channels:
            members = [
                t.channels[name] for t in timelines if name in t.channels
            ]
            out.channels[name] = SeriesChannel.merge(members)
        return out

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def to_csv(self, channels: Optional[Iterable[str]] = None) -> str:
        """CSV rows: ``workload,cap,channel,t_s,dt_s,mean,min,max``."""
        names = list(channels) if channels is not None else self.names()
        lines = ["workload,cap,channel,t_s,dt_s,mean,min,max"]
        for name in names:
            ch = self.channel(name)
            for p in ch.points():
                lines.append(
                    f"{self.workload},{self.cap_label},{name},"
                    f"{_sig(p.t_s):g},{_sig(p.dt_s):g},{_sig(p.mean):g},"
                    f"{_sig(p.vmin):g},{_sig(p.vmax):g}"
                )
        return "\n".join(lines) + "\n"

    def counter_samples(
        self, max_points: int = 120
    ) -> List[Tuple[str, float, float]]:
        """``(channel, t_s, value)`` triples for trace counter export.

        Channels longer than ``max_points`` are resampled so a sweep's
        trace file stays small.
        """
        out: List[Tuple[str, float, float]] = []
        for name, ch in self.channels.items():
            pts = ch.points()
            if len(pts) > max_points:
                pts = ch.resample(max_points)
            out.extend((name, p.t_s, p.mean) for p in pts)
        return out


def timeline_to_dict(timeline: RunTimeline) -> dict:
    """JSON-ready representation of one timeline."""
    return {
        "schema": TIMELINE_SCHEMA_VERSION,
        "workload": timeline.workload,
        "cap_w": timeline.cap_w,
        "reps": timeline.reps,
        "period_s": _sig(timeline.period_s),
        "channels": {
            name: ch.to_dict() for name, ch in timeline.channels.items()
        },
    }


def timeline_from_dict(data: dict) -> RunTimeline:
    """Inverse of :func:`timeline_to_dict`."""
    try:
        schema = int(data.get("schema", 0))
        if schema != TIMELINE_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported timeline schema {schema!r} "
                f"(expected {TIMELINE_SCHEMA_VERSION})"
            )
        timeline = RunTimeline(
            workload=data["workload"],
            cap_w=None if data["cap_w"] is None else float(data["cap_w"]),
            period_s=float(data["period_s"]),
            reps=int(data.get("reps", 1)),
        )
        for name, ch in data.get("channels", {}).items():
            timeline.channels[name] = SeriesChannel.from_dict(name, ch)
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed timeline: {exc}") from exc
    return timeline


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling knobs for in-run telemetry (picklable, frozen)."""

    enabled: bool = True
    #: Target simulated seconds per timeline point (aggregation bucket).
    period_s: float = 0.25
    #: Ring capacity per channel before 2× decimation.
    capacity: int = 256

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise SimulationError("telemetry period must be positive")
        if self.capacity < 8:
            raise SimulationError("telemetry capacity must be at least 8")

    @classmethod
    def from_env(cls) -> "TelemetryConfig":
        """Build from ``REPRO_TELEMETRY*`` (defaults when unset)."""
        raw = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
        enabled = raw not in _FALSY if raw else True
        period = float(os.environ.get("REPRO_TELEMETRY_PERIOD", 0.25) or 0.25)
        capacity = int(os.environ.get("REPRO_TELEMETRY_CAPACITY", 256) or 256)
        return cls(enabled=enabled, period_s=period, capacity=capacity)

    @classmethod
    def resolve(
        cls, telemetry: "TelemetryConfig | bool | None"
    ) -> "TelemetryConfig":
        """Normalise the ``telemetry`` argument runners accept.

        ``None`` reads the environment; ``True``/``False`` force the
        default config on or off; a config passes through unchanged.
        """
        if telemetry is None:
            return cls.from_env()
        if telemetry is True:
            return cls()
        if telemetry is False:
            return cls(enabled=False)
        return telemetry


class TelemetrySampler:
    """Aggregates per-quantum engine state onto the sampling period.

    The runner calls :meth:`record` once per control step with the
    step's duration and channel values; contributions accumulate
    (duration-weighted) into the current bucket, which flushes into the
    channels once ``period_s`` of simulated time has elapsed.  A single
    long step — the steady-state fast-forward — flushes immediately as
    one wide interval, so coverage is continuous across fast-forwarded
    time and ``power_w``'s integral equals the scalar energy integral.

    Pure bookkeeping: no RNG, no model state, O(channels) per step.
    """

    def __init__(
        self,
        config: TelemetryConfig,
        channels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._cfg = config
        names = dict(channels if channels is not None else STANDARD_CHANNELS)
        self._channels: Dict[str, SeriesChannel] = {
            name: SeriesChannel(name, unit, config.capacity)
            for name, unit in names.items()
        }
        self._bucket_t0 = 0.0
        self._elapsed = 0.0
        self._samples = 0
        # Per-channel bucket accumulators: [weighted sum, min, max].
        self._acc: Dict[str, List[float]] = {}
        # Captured once: the stream topic active when the run started.
        # None (the common CLI/benchmark case) keeps every flush free of
        # bus lookups; publishing reads engine values already computed,
        # so results are bit-identical either way.
        self._stream_topic = current_stream()

    @property
    def config(self) -> TelemetryConfig:
        """The sampling knobs in force."""
        return self._cfg

    @property
    def samples(self) -> int:
        """Raw :meth:`record` calls so far."""
        return self._samples

    def block_state(self) -> tuple:
        """``(bucket_t0, elapsed, acc)`` snapshot for the kernel.

        ``acc`` is the live per-channel accumulator dict (each slot is
        ``[weighted sum, min, max]``); the block-step kernel seeds its
        local bucket folds from it and installs the evolved state with
        :meth:`commit_block`.
        """
        return self._bucket_t0, self._elapsed, self._acc

    def block_channel(self, name: str) -> SeriesChannel:
        """The channel ``name`` flushes into (created like ``_flush``)."""
        channel = self._channels.get(name)
        if channel is None:
            channel = self._channels[name] = SeriesChannel(
                name, "", self._cfg.capacity
            )
        return channel

    def commit_block(
        self,
        samples: int,
        bucket_t0: float,
        elapsed: float,
        acc: Dict[str, List[float]],
        flushed: Optional[List[List[SeriesPoint]]] = None,
    ) -> None:
        """Install bucket state evolved by the block-step kernel.

        The kernel performs the same per-quantum folds :meth:`record`
        does (and flushes full buckets into the channels itself via
        :meth:`block_channel`); this commits the sample count and the
        partial tail bucket exactly as the scalar path would have left
        them.  ``flushed`` — the kernel's lockstep per-channel lists of
        already-committed bucket points, in ``STANDARD_CHANNELS``
        order — lets a live stream see the buckets the kernel flushed
        directly into the channels.
        """
        self._samples += samples
        self._bucket_t0 = bucket_t0
        self._elapsed = elapsed
        self._acc = acc
        if self._stream_topic is not None and flushed:
            names = tuple(STANDARD_CHANNELS)
            bus = event_bus()
            for group in zip(*flushed):
                first = group[0]
                bus.publish(
                    self._stream_topic,
                    "sample",
                    {
                        "t_s": first.t_s,
                        "dt_s": first.dt_s,
                        "channels": {
                            name: pt.mean
                            for name, pt in zip(names, group)
                        },
                    },
                )

    def record(self, dt_s: float, values: Mapping[str, float]) -> None:
        """Fold one control step's state into the current bucket."""
        if dt_s < 0:
            raise SimulationError("step duration must be non-negative")
        self._samples += 1
        acc = self._acc
        for name, value in values.items():
            slot = acc.get(name)
            if slot is None:
                acc[name] = [value * dt_s, value, value]
            else:
                slot[0] += value * dt_s
                if value < slot[1]:
                    slot[1] = value
                if value > slot[2]:
                    slot[2] = value
        self._elapsed += dt_s
        if self._elapsed >= self._cfg.period_s:
            self._flush()

    def _flush(self) -> None:
        if self._elapsed <= 0:
            return
        dt = self._elapsed
        t0 = self._bucket_t0
        for name, slot in self._acc.items():
            channel = self._channels.get(name)
            if channel is None:
                channel = self._channels[name] = SeriesChannel(
                    name, "", self._cfg.capacity
                )
            channel.add(t0, dt, slot[0] / dt, slot[1], slot[2])
        if self._stream_topic is not None and self._acc:
            event_bus().publish(
                self._stream_topic,
                "sample",
                {
                    "t_s": t0,
                    "dt_s": dt,
                    "channels": {
                        name: slot[0] / dt
                        for name, slot in self._acc.items()
                    },
                },
            )
        self._acc = {}
        self._bucket_t0 = t0 + dt
        self._elapsed = 0.0

    def finish(
        self, workload: str, cap_w: Optional[float]
    ) -> RunTimeline:
        """Flush the tail bucket and assemble the run's timeline."""
        self._flush()
        timeline = RunTimeline(
            workload=workload, cap_w=cap_w, period_s=self._cfg.period_s
        )
        for name, channel in self._channels.items():
            if len(channel):
                timeline.channels[name] = channel
        return timeline
