"""Stdlib sampling profiler with span-phase cost attribution.

Span tracing (PR 3) answers *how long* each instrumented phase took;
it cannot say *where inside the phase* the time went, and wrapping the
hot kernels in more spans would cost exactly the overhead the <5%
budget forbids.  This profiler takes the classic way out: a background
daemon thread wakes ``hz`` times per second, grabs every thread's
current frame via :func:`sys._current_frames`, and charges the sample

- to the innermost *open span* on that thread (via the tracing
  module's cross-thread stack registry) — phase attribution that works
  even when the phase is one opaque numpy call, and
- to the top-of-stack ``module:function`` — the conventional hot-spot
  view.

At :meth:`~SamplingProfiler.stop` the tallies become a
:class:`ProfileReport`: per-phase sampled seconds, per-function
counts, and — when the engine retired control quanta while profiling —
an *attributed cost per quantum* (phase seconds / quanta), the number
a capacity model actually wants.  The report feeds the
``repro_profile_*`` metrics panel, the Chrome trace (as a counter
track) when a collector is active, and the structured log.

Sampling is pure observation: it reads frames and draws no RNG, so
results are bit-identical with the profiler on or off.  Enable it with
``--profile`` / ``REPRO_PROFILE=1``; tune the rate with
``--profile-hz`` / ``REPRO_PROFILE_HZ`` (default 97 Hz — prime, so
the sampler doesn't phase-lock to millisecond-periodic work).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .logging import get_logger
from .metrics import engine_metrics, profile_metrics
from .tracing import current_collector, span_stacks_by_thread

__all__ = [
    "DEFAULT_HZ",
    "ProfileConfig",
    "ProfileReport",
    "SamplingProfiler",
    "profiling_enabled",
    "profile_from_env",
]

#: Default sampling rate.  Prime, so periodic workloads don't alias.
DEFAULT_HZ = 97.0

_log = get_logger("obs.profile")

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}


def profiling_enabled(cli_flag: Optional[bool] = None) -> bool:
    """Resolve the profiler switch: CLI flag beats ``REPRO_PROFILE``."""
    if cli_flag is not None:
        return bool(cli_flag)
    raw = os.environ.get("REPRO_PROFILE", "").strip().lower()
    if raw in _TRUTHY:
        return True
    return False


@dataclass(frozen=True)
class ProfileConfig:
    """Sampling knobs."""

    hz: float = DEFAULT_HZ

    def __post_init__(self) -> None:
        if not 0 < self.hz <= 10_000:
            raise ValueError("profile hz must be in (0, 10000]")

    @classmethod
    def from_env(cls) -> "ProfileConfig":
        """Read ``REPRO_PROFILE_HZ`` (falls back to the default)."""
        raw = os.environ.get("REPRO_PROFILE_HZ")
        if not raw:
            return cls()
        try:
            return cls(hz=float(raw))
        except ValueError:
            _log.warning("profile_bad_hz", value=raw)
            return cls()


def profile_from_env(
    cli_flag: Optional[bool] = None,
) -> Optional["SamplingProfiler"]:
    """A started profiler when enabled, else None."""
    if not profiling_enabled(cli_flag):
        return None
    profiler = SamplingProfiler(ProfileConfig.from_env())
    profiler.start()
    return profiler


@dataclass
class ProfileReport:
    """What one profiling session measured."""

    samples: int
    wall_s: float
    hz: float
    #: Innermost-span name -> samples landing inside it.
    phase_samples: Dict[str, int]
    #: ``module:function`` -> top-of-stack samples.
    function_samples: Dict[str, int]
    #: Engine control quanta retired while the profiler ran.
    quanta: int = 0
    #: Phase -> attributed wall seconds per quantum (only phases that
    #: sampled while quanta retired; empty when no quanta did).
    per_quantum_s: Dict[str, float] = field(default_factory=dict)

    def phase_seconds(self) -> Dict[str, float]:
        """Per-phase sampled wall seconds (samples / hz)."""
        return {
            name: count / self.hz
            for name, count in self.phase_samples.items()
        }

    def top_functions(self, n: int = 10) -> list:
        """The ``n`` hottest ``(module:function, samples)`` pairs."""
        ranked = sorted(
            self.function_samples.items(), key=lambda kv: -kv[1]
        )
        return ranked[:n]

    def to_dict(self) -> dict:
        """JSON-ready report."""
        return {
            "samples": self.samples,
            "wall_s": round(self.wall_s, 6),
            "hz": self.hz,
            "quanta": self.quanta,
            "phase_samples": dict(self.phase_samples),
            "phase_seconds": {
                k: round(v, 6) for k, v in self.phase_seconds().items()
            },
            "per_quantum_s": {
                k: round(v, 12) for k, v in self.per_quantum_s.items()
            },
            "top_functions": [
                {"function": name, "samples": count}
                for name, count in self.top_functions()
            ],
        }


class SamplingProfiler:
    """Background-thread sampler over :func:`sys._current_frames`.

    ``start()`` spawns a daemon thread; ``stop()`` joins it and
    returns the :class:`ProfileReport` (also pushed to the metrics
    panel, the active trace collector, and the structured log).  The
    sampler thread excludes itself from its own samples.
    """

    def __init__(self, config: Optional[ProfileConfig] = None) -> None:
        self.config = config or ProfileConfig()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._samples = 0
        self._phase_samples: Dict[str, int] = {}
        self._function_samples: Dict[str, int] = {}
        self._t0 = 0.0
        self._quanta0 = 0
        self._report: Optional[ProfileReport] = None

    @property
    def running(self) -> bool:
        """Whether the sampler thread is live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self._samples = 0
        self._phase_samples = {}
        self._function_samples = {}
        self._report = None
        self._t0 = time.perf_counter()
        self._quanta0 = int(engine_metrics().quanta.value)
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        _log.info("profile_started", hz=self.config.hz)
        return self

    def _run(self) -> None:
        period = 1.0 / self.config.hz
        own_tid = threading.get_ident()
        while not self._stop.wait(period):
            self._sample(own_tid)

    def _sample(self, own_tid: int) -> None:
        frames = sys._current_frames()
        stacks = span_stacks_by_thread()
        for tid, frame in frames.items():
            if tid == own_tid:
                continue
            self._samples += 1
            names = stacks.get(tid)
            phase = names[-1] if names else "(no span)"
            self._phase_samples[phase] = (
                self._phase_samples.get(phase, 0) + 1
            )
            code = frame.f_code
            func = f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}"
            self._function_samples[func] = (
                self._function_samples.get(func, 0) + 1
            )

    def stop(self) -> ProfileReport:
        """Stop sampling and assemble (and export) the report."""
        if self._report is not None:
            return self._report
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        wall = time.perf_counter() - self._t0
        quanta = int(engine_metrics().quanta.value) - self._quanta0
        hz = self.config.hz
        per_quantum: Dict[str, float] = {}
        if quanta > 0:
            per_quantum = {
                name: (count / hz) / quanta
                for name, count in self._phase_samples.items()
            }
        report = ProfileReport(
            samples=self._samples,
            wall_s=wall,
            hz=hz,
            phase_samples=dict(self._phase_samples),
            function_samples=dict(self._function_samples),
            quanta=quanta,
            per_quantum_s=per_quantum,
        )
        self._report = report
        self._export(report)
        return report

    def _export(self, report: ProfileReport) -> None:
        profile_metrics().observe_session(
            report.samples, report.phase_samples, report.per_quantum_s
        )
        collector = current_collector()
        if collector is not None and report.phase_samples:
            # One counter event per phase renders as a bar track next
            # to the span rows in the Chrome trace viewer.
            collector.add_counter(
                "profile_samples",
                time.perf_counter(),
                {
                    name: float(count)
                    for name, count in report.phase_samples.items()
                },
            )
        _log.info(
            "profile_report",
            samples=report.samples,
            wall_s=round(report.wall_s, 4),
            hz=report.hz,
            quanta=report.quanta,
            phases=dict(report.phase_samples),
            top=[name for name, _ in report.top_functions(5)],
        )
