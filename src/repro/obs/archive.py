"""Persistent observability archive: metrics history and run records.

Every observability surface built so far is ephemeral — ``/metrics``
is a point-in-time scrape, timelines live inside one result document,
and the bench trajectory (``BENCH_*.json``) is overwritten in place.
The paper's core claim is a *relationship over time* (how per-core
performance degrades as DCM tightens the cap), and tuning the
reproduction at scale needs the same longitudinal view of itself:
throughput across commits, phase latencies across runs, fleet health
across configurations.  This module is that durable substrate — a
stdlib-SQLite warehouse the service, the CLI, the fleet engine, and
the bench scripts all write into:

- **metric snapshots** — :class:`MetricsRecorder` scrapes the live
  registries on a background thread and lands each series as a
  duration-weighted interval sample, so history survives restarts and
  retention can decimate 2× with the exact-integral contract of
  :class:`~repro.obs.timeseries.SeriesChannel`;
- **run records** — one distilled row set per completed run (service
  jobs at the scheduler's completion hook, ``fleet --archive`` runs,
  ingested ``BENCH_sweep.json`` / ``BENCH_fleet.json`` documents):
  scalar series like ``runs_per_s``, ``phase.<name>_s``, per-cap
  execution seconds, detector counts;
- **fleet-health windows** — :meth:`health_sink` plugs into
  :class:`~repro.fleet.health.FleetHealth`'s window flushes so rack
  rollups accumulate across runs;
- **named baselines + a trend engine** — :func:`detect_trends` flags
  median-shift drift per series against a named baseline (or the
  history head), with direction-aware thresholds, powering
  ``repro-powercap trends --check`` and ``GET /metrics/history`` /
  ``GET /runs/compare`` on the service API.

Connections are opened per call with a busy timeout (the same policy
as :class:`~repro.service.store.ResultStore`), so one archive file is
safe to share between the recorder thread, scheduler workers, and
HTTP handler threads.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError
from .logging import get_logger
from .timeseries import SeriesChannel, SeriesPoint

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "DEFAULT_SNAPSHOT_PERIOD_S",
    "DEFAULT_SNAPSHOT_RETENTION",
    "ObsArchive",
    "MetricsRecorder",
    "TrendRule",
    "Trend",
    "DEFAULT_TREND_RULES",
    "rule_for_series",
    "detect_trends",
    "distill_experiment_doc",
    "distill_fleet_doc",
]

ARCHIVE_SCHEMA_VERSION = 1

#: Default seconds between background metric snapshots.
DEFAULT_SNAPSHOT_PERIOD_S = 5.0

#: Per-series snapshot rows kept before retention decimates 2×.
DEFAULT_SNAPSHOT_RETENTION = 512

_log = get_logger("obs.archive")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS metric_history (
    series TEXT NOT NULL,
    t_s    REAL NOT NULL,
    dt_s   REAL NOT NULL,
    mean   REAL NOT NULL,
    vmin   REAL NOT NULL,
    vmax   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metric_history
    ON metric_history (series, t_s);

CREATE TABLE IF NOT EXISTS runs (
    run_id    TEXT PRIMARY KEY,
    kind      TEXT NOT NULL,
    ts        REAL NOT NULL,
    source    TEXT,
    meta_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs (kind, ts);

CREATE TABLE IF NOT EXISTS run_series (
    run_id TEXT NOT NULL,
    series TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, series)
);
CREATE INDEX IF NOT EXISTS idx_run_series ON run_series (series);

CREATE TABLE IF NOT EXISTS health_windows (
    run_id           TEXT NOT NULL,
    t_s              REAL NOT NULL,
    dt_s             REAL NOT NULL,
    headroom_w       REAL NOT NULL,
    capfloor_frac    REAL NOT NULL,
    slo_debt_rate_w  REAL NOT NULL,
    escalation_level REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_health_windows
    ON health_windows (run_id, t_s);

CREATE TABLE IF NOT EXISTS baselines (
    name   TEXT NOT NULL,
    series TEXT NOT NULL,
    value  REAL NOT NULL,
    ts     REAL NOT NULL,
    PRIMARY KEY (name, series)
);
"""


class ObsArchive:
    """SQLite-backed warehouse for longitudinal observability data."""

    def __init__(self, path: "str | os.PathLike") -> None:
        self._path = str(path)
        if Path(self._path).is_dir():
            raise ConfigError(f"archive path is a directory: {self._path}")
        with self._connect() as conn:
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(ARCHIVE_SCHEMA_VERSION)),
                )
            elif int(row["value"]) != ARCHIVE_SCHEMA_VERSION:
                raise ConfigError(
                    f"archive {self._path} has schema {row['value']}, "
                    f"this build writes {ARCHIVE_SCHEMA_VERSION}"
                )

    @property
    def path(self) -> str:
        """Location of the archive database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    # ------------------------------------------------------------------
    # Metric snapshots
    # ------------------------------------------------------------------

    def record_snapshot(
        self,
        samples: "Sequence[Tuple[str, Dict[str, str], float]]",
        ts: Optional[float] = None,
        dt_s: float = 0.0,
    ) -> int:
        """Land one scrape as interval samples; returns rows written.

        ``samples`` is the ``(name, labels, value)`` shape the metric
        registries emit; labelled samples flatten into one series per
        label combination (``repro_jobs{state=done}``).  ``dt_s`` is
        the time this scrape covers (the recorder passes the gap since
        its previous scrape), so series integrate exactly like
        telemetry channels and retention can decimate without losing
        the integral.
        """
        now = time.time() if ts is None else float(ts)
        rows = [
            (flatten_series_name(name, labels), now, float(dt_s),
             float(value), float(value), float(value))
            for name, labels, value in samples
        ]
        if not rows:
            return 0
        with self._connect() as conn:
            conn.executemany(
                "INSERT INTO metric_history "
                "(series, t_s, dt_s, mean, vmin, vmax) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def snapshot_series(self) -> List[str]:
        """All series names with recorded history, sorted."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT series FROM metric_history ORDER BY series"
            ).fetchall()
        return [r["series"] for r in rows]

    def metric_history(
        self,
        series: str,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[SeriesPoint]:
        """One series' interval samples, oldest first."""
        query = (
            "SELECT t_s, dt_s, mean, vmin, vmax FROM metric_history "
            "WHERE series = ?"
        )
        params: list = [series]
        if since is not None:
            query += " AND t_s >= ?"
            params.append(float(since))
        query += " ORDER BY t_s"
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        points = [
            SeriesPoint(r["t_s"], r["dt_s"], r["mean"], r["vmin"], r["vmax"])
            for r in rows
        ]
        if limit is not None and len(points) > limit:
            points = points[-int(limit):]
        return points

    def snapshot_count(self, series: Optional[str] = None) -> int:
        """Stored snapshot rows (for one series, or in total)."""
        with self._connect() as conn:
            if series is None:
                row = conn.execute(
                    "SELECT COUNT(*) AS n FROM metric_history"
                ).fetchone()
            else:
                row = conn.execute(
                    "SELECT COUNT(*) AS n FROM metric_history "
                    "WHERE series = ?",
                    (series,),
                ).fetchone()
        return int(row["n"])

    def prune_snapshots(
        self, max_points: int = DEFAULT_SNAPSHOT_RETENTION
    ) -> int:
        """Retention: decimate over-long series 2×; returns rows freed.

        Each over-budget series is replayed through a
        :class:`SeriesChannel` sized to ``max_points``, so adjacent
        intervals merge duration-weighted with min/max envelopes —
        exactly the telemetry ring's decimation contract.  The series'
        time integral is preserved (up to float associativity) and
        coverage stays gap-free at steadily coarser resolution.
        """
        if max_points < 8:
            raise ConfigError("snapshot retention must keep at least 8 rows")
        freed = 0
        for series in self.snapshot_series():
            points = self.metric_history(series)
            if len(points) <= max_points:
                continue
            channel = SeriesChannel(series, capacity=int(max_points))
            channel.add_block(points)
            kept = channel.points()
            with self._connect() as conn:
                conn.execute(
                    "DELETE FROM metric_history WHERE series = ?", (series,)
                )
                conn.executemany(
                    "INSERT INTO metric_history "
                    "(series, t_s, dt_s, mean, vmin, vmax) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (series, p.t_s, p.dt_s, p.mean, p.vmin, p.vmax)
                        for p in kept
                    ],
                )
            freed += len(points) - len(kept)
        if freed:
            _log.debug("snapshots_pruned", rows=freed, keep=max_points)
        return freed

    # ------------------------------------------------------------------
    # Run records
    # ------------------------------------------------------------------

    def record_run(
        self,
        run_id: str,
        kind: str,
        series: Dict[str, float],
        meta: Optional[dict] = None,
        source: Optional[str] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Persist one distilled run record (idempotent per run id)."""
        now = time.time() if ts is None else float(ts)
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO runs "
                "(run_id, kind, ts, source, meta_json) VALUES (?, ?, ?, ?, ?)",
                (
                    run_id,
                    kind,
                    now,
                    source,
                    json.dumps(meta or {}, sort_keys=True, default=str),
                ),
            )
            conn.execute(
                "DELETE FROM run_series WHERE run_id = ?", (run_id,)
            )
            conn.executemany(
                "INSERT INTO run_series (run_id, series, value) "
                "VALUES (?, ?, ?)",
                [
                    (run_id, name, float(value))
                    for name, value in series.items()
                ],
            )
        _log.debug(
            "run_recorded", run_id=run_id, kind=kind, series=len(series)
        )

    def runs(
        self, kind: Optional[str] = None, limit: int = 50
    ) -> List[dict]:
        """Recent run records (newest first), without their series."""
        query = "SELECT run_id, kind, ts, source, meta_json FROM runs"
        params: list = []
        if kind is not None:
            query += " WHERE kind = ?"
            params.append(kind)
        query += " ORDER BY ts DESC LIMIT ?"
        params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [
            {
                "run_id": r["run_id"],
                "kind": r["kind"],
                "ts": r["ts"],
                "source": r["source"],
                "meta": json.loads(r["meta_json"]),
            }
            for r in rows
        ]

    def get_run(self, run_id: str) -> Optional[dict]:
        """One run record with its series, or None."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT run_id, kind, ts, source, meta_json FROM runs "
                "WHERE run_id = ?",
                (run_id,),
            ).fetchone()
            if row is None:
                return None
            series_rows = conn.execute(
                "SELECT series, value FROM run_series WHERE run_id = ? "
                "ORDER BY series",
                (run_id,),
            ).fetchall()
        return {
            "run_id": row["run_id"],
            "kind": row["kind"],
            "ts": row["ts"],
            "source": row["source"],
            "meta": json.loads(row["meta_json"]),
            "series": {r["series"]: r["value"] for r in series_rows},
        }

    def run_series_names(self, kind: Optional[str] = None) -> List[str]:
        """Distinct series names across run records, sorted."""
        with self._connect() as conn:
            if kind is None:
                rows = conn.execute(
                    "SELECT DISTINCT series FROM run_series ORDER BY series"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT DISTINCT rs.series FROM run_series rs "
                    "JOIN runs r ON r.run_id = rs.run_id "
                    "WHERE r.kind = ? ORDER BY rs.series",
                    (kind,),
                ).fetchall()
        return [r["series"] for r in rows]

    def series_history(
        self, series: str, kind: Optional[str] = None
    ) -> List[Tuple[float, str, float]]:
        """``(ts, run_id, value)`` for one series, oldest first."""
        query = (
            "SELECT r.ts, r.run_id, rs.value FROM run_series rs "
            "JOIN runs r ON r.run_id = rs.run_id WHERE rs.series = ?"
        )
        params: list = [series]
        if kind is not None:
            query += " AND r.kind = ?"
            params.append(kind)
        query += " ORDER BY r.ts, r.run_id"
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [(r["ts"], r["run_id"], r["value"]) for r in rows]

    def compare_runs(self, a: str, b: str) -> dict:
        """Per-series deltas between two archived runs.

        Series carried by only one side are still listed (the other
        side is None); relative deltas are omitted when ``a`` is zero.
        """
        run_a = self.get_run(a)
        run_b = self.get_run(b)
        if run_a is None:
            raise SimulationError(f"no archived run {a!r}")
        if run_b is None:
            raise SimulationError(f"no archived run {b!r}")
        names = sorted(set(run_a["series"]) | set(run_b["series"]))
        series: Dict[str, dict] = {}
        for name in names:
            va = run_a["series"].get(name)
            vb = run_b["series"].get(name)
            entry: dict = {"a": va, "b": vb}
            if va is not None and vb is not None:
                entry["delta"] = vb - va
                if va != 0:
                    entry["rel"] = (vb - va) / abs(va)
            series[name] = entry
        return {
            "a": {k: run_a[k] for k in ("run_id", "kind", "ts", "source",
                                        "meta")},
            "b": {k: run_b[k] for k in ("run_id", "kind", "ts", "source",
                                        "meta")},
            "series": series,
        }

    # ------------------------------------------------------------------
    # Fleet health windows
    # ------------------------------------------------------------------

    def record_health_window(
        self, run_id: str, t_s: float, dt_s: float, rollup: Dict[str, float]
    ) -> None:
        """Persist one flushed fleet-health window."""
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO health_windows (run_id, t_s, dt_s, headroom_w, "
                "capfloor_frac, slo_debt_rate_w, escalation_level) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    float(t_s),
                    float(dt_s),
                    float(rollup.get("headroom_w", 0.0)),
                    float(rollup.get("capfloor_frac", 0.0)),
                    float(rollup.get("slo_debt_rate_w", 0.0)),
                    float(rollup.get("escalation_level", 0.0)),
                ),
            )

    def health_windows(
        self, run_id: Optional[str] = None, limit: int = 1000
    ) -> List[dict]:
        """Stored health windows, oldest first."""
        query = (
            "SELECT run_id, t_s, dt_s, headroom_w, capfloor_frac, "
            "slo_debt_rate_w, escalation_level FROM health_windows"
        )
        params: list = []
        if run_id is not None:
            query += " WHERE run_id = ?"
            params.append(run_id)
        query += " ORDER BY t_s LIMIT ?"
        params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [dict(r) for r in rows]

    def health_sink(self, run_id: str) -> Callable[[float, float, dict], None]:
        """A :class:`~repro.fleet.health.FleetHealth` flush hook.

        The returned callable lands each flushed window under
        ``run_id``; exceptions are contained (a full disk must not
        kill a fleet run mid-flight).
        """

        def sink(t_s: float, dt_s: float, rollup: dict) -> None:
            try:
                self.record_health_window(run_id, t_s, dt_s, rollup)
            except sqlite3.Error as exc:  # pragma: no cover — disk faults
                _log.warning(
                    "health_window_dropped", run_id=run_id, error=str(exc)
                )

        return sink

    # ------------------------------------------------------------------
    # Named baselines
    # ------------------------------------------------------------------

    def set_baseline(
        self,
        name: str,
        series: Dict[str, float],
        ts: Optional[float] = None,
    ) -> None:
        """Store (or replace) one named baseline's per-series values."""
        now = time.time() if ts is None else float(ts)
        with self._connect() as conn:
            conn.execute("DELETE FROM baselines WHERE name = ?", (name,))
            conn.executemany(
                "INSERT INTO baselines (name, series, value, ts) "
                "VALUES (?, ?, ?, ?)",
                [(name, s, float(v), now) for s, v in series.items()],
            )

    def baseline(self, name: str) -> Dict[str, float]:
        """One named baseline's ``{series: value}`` (empty if unknown)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT series, value FROM baselines WHERE name = ?",
                (name,),
            ).fetchall()
        return {r["series"]: r["value"] for r in rows}

    def baseline_names(self) -> List[str]:
        """All stored baseline names, sorted."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT name FROM baselines ORDER BY name"
            ).fetchall()
        return [r["name"] for r in rows]

    # ------------------------------------------------------------------
    # Bench-document ingestion
    # ------------------------------------------------------------------

    def ingest_bench(
        self,
        doc: dict,
        source: Optional[str] = None,
        ts: Optional[float] = None,
        run_id: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Append one ``BENCH_*.json`` document; returns (kind, run_id).

        The document is identified by its ``benchmark`` key
        (``table2-sweep`` → ``bench_sweep``, ``fleet-scale`` →
        ``bench_fleet``, ``service-load`` → ``bench_service``); each
        ingestion is a new run record, so the bench trajectory finally
        accumulates instead of overwriting itself.
        """
        if not isinstance(doc, dict):
            raise SimulationError("bench document must be a JSON object")
        bench = doc.get("benchmark")
        now = time.time() if ts is None else float(ts)
        if bench == "table2-sweep":
            kind = "bench_sweep"
            series = _distill_bench_sweep(doc)
        elif bench == "fleet-scale":
            kind = "bench_fleet"
            series = _distill_bench_fleet(doc)
        elif bench == "service-load":
            kind = "bench_service"
            series = _distill_bench_service(doc)
        else:
            raise SimulationError(
                f"unrecognised bench document (benchmark={bench!r}); "
                "expected table2-sweep, fleet-scale, or service-load"
            )
        if run_id is None:
            run_id = f"{kind}-{now:.3f}"
        meta = {
            "benchmark": bench,
            "schema": doc.get("schema"),
            "machine": doc.get("machine"),
            "parameters": doc.get("parameters"),
        }
        self.record_run(
            run_id, kind, series, meta=meta, source=source, ts=now
        )
        return kind, run_id


def flatten_series_name(name: str, labels: Dict[str, str]) -> str:
    """``name{k=v,...}`` with sorted labels (bare name when unlabelled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _distill_bench_sweep(doc: dict) -> Dict[str, float]:
    series: Dict[str, float] = {}
    sweep = doc.get("sweep") or {}
    for key in ("parallel_speedup", "batch_runs_per_s", "chunk_overhead_ms"):
        if isinstance(sweep.get(key), (int, float)):
            series[key] = float(sweep[key])
    for name in ("jobs1", "jobs1_batch", "jobs4"):
        entry = sweep.get(name) or {}
        for key in ("wall_s", "runs_per_s"):
            if isinstance(entry.get(key), (int, float)):
                series[f"{name}.{key}"] = float(entry[key])
    if isinstance(sweep.get("jobs1"), dict) and isinstance(
        sweep["jobs1"].get("runs_per_s"), (int, float)
    ):
        series["runs_per_s"] = float(sweep["jobs1"]["runs_per_s"])
    single = doc.get("single_run_120w") or {}
    for key in ("speedup", "engagement", "scalar_ms", "block_ms"):
        if isinstance(single.get(key), (int, float)):
            series[f"single_run.{key}"] = float(single[key])
    if not series:
        raise SimulationError("bench sweep document carries no series")
    return series


def _distill_bench_fleet(doc: dict) -> Dict[str, float]:
    series: Dict[str, float] = {}
    sizes = doc.get("sizes") or {}
    largest = None
    for key, entry in sizes.items():
        if not isinstance(entry, dict):
            continue
        rate = entry.get("node_steps_per_s")
        if isinstance(rate, (int, float)):
            series[f"node_steps_per_s.{key}"] = float(rate)
            if largest is None or int(key) > largest:
                largest = int(key)
        wall = entry.get("wall_s")
        if isinstance(wall, (int, float)):
            series[f"wall_s.{key}"] = float(wall)
    if largest is not None:
        series["node_steps_per_s"] = series[f"node_steps_per_s.{largest}"]
    if not series:
        raise SimulationError("bench fleet document carries no series")
    return series


def _distill_bench_service(doc: dict) -> Dict[str, float]:
    series: Dict[str, float] = {}
    submit = doc.get("submit") or {}
    for key in (
        "throughput_per_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "submitted",
        "shed",
    ):
        if isinstance(submit.get(key), (int, float)):
            series[f"submit.{key}"] = float(submit[key])
    drain = doc.get("drain") or {}
    for key in ("jobs_per_s", "wall_s", "completed"):
        if isinstance(drain.get(key), (int, float)):
            series[f"drain.{key}"] = float(drain[key])
    sse = doc.get("sse") or {}
    for key in ("subscribers", "events_delivered", "dropped"):
        if isinstance(sse.get(key), (int, float)):
            series[f"sse.{key}"] = float(sse[key])
    if isinstance(submit.get("throughput_per_s"), (int, float)):
        series["throughput_per_s"] = float(submit["throughput_per_s"])
    if not series:
        raise SimulationError("bench service document carries no series")
    return series


# ----------------------------------------------------------------------
# Run distillation (service jobs, fleet runs)
# ----------------------------------------------------------------------


def distill_experiment_doc(
    docs: Dict[str, dict], wall_s: Optional[float] = None
) -> Tuple[Dict[str, float], dict]:
    """``(series, meta)`` distilled from ``{workload: experiment doc}``.

    Pulls the trend-relevant scalars out of each sweep document:
    per-cap execution seconds and energy, per-phase span seconds
    (prefixed ``phase.``), detector-annotation counts (prefixed
    ``phenomena.``), rate-cache hit rate, and — when the caller knows
    the wall clock — ``wall_s`` and ``runs_per_s``.
    """
    series: Dict[str, float] = {}
    meta: dict = {"workloads": sorted(docs)}
    runs = 0
    for name, doc in sorted(docs.items()):
        rows = {"baseline": doc.get("baseline") or {}}
        rows.update(doc.get("by_cap") or {})
        for label, row in rows.items():
            if isinstance(row.get("execution_s"), (int, float)):
                series[f"{name}.execution_s.{label}"] = float(
                    row["execution_s"]
                )
            if isinstance(row.get("energy_j"), (int, float)):
                series[f"{name}.energy_j.{label}"] = float(row["energy_j"])
            runs += int(row.get("n_runs") or 1)
        prov = doc.get("provenance") or {}
        for phase, seconds in (prov.get("phase_seconds") or {}).items():
            key = f"phase.{phase}_s"
            series[key] = series.get(key, 0.0) + float(seconds)
        counts: Dict[str, float] = {}
        for det in prov.get("phenomena") or []:
            phen = det.get("phenomenon", "unknown")
            counts[phen] = counts.get(phen, 0.0) + 1.0
        for phen, count in counts.items():
            key = f"phenomena.{phen}"
            series[key] = series.get(key, 0.0) + count
        cache = prov.get("rate_cache")
        if isinstance(cache, dict):
            hits = float(cache.get("hits") or 0)
            misses = float(cache.get("misses") or 0)
            if hits + misses > 0:
                series["rate_cache.hit_rate"] = hits / (hits + misses)
        execution = prov.get("execution")
        if isinstance(execution, dict):
            meta.setdefault("execution", execution)
        if prov.get("git") is not None:
            meta.setdefault("git", prov["git"])
        if prov.get("package_version") is not None:
            meta.setdefault("package_version", prov["package_version"])
    series["runs"] = float(runs)
    if wall_s is not None and wall_s > 0:
        series["wall_s"] = float(wall_s)
        series["runs_per_s"] = runs / float(wall_s)
    return series, meta


def distill_fleet_doc(doc: dict) -> Tuple[Dict[str, float], dict]:
    """``(series, meta)`` distilled from a fleet run document."""
    series: Dict[str, float] = {}
    summary = doc.get("summary") or {}
    for key, value in summary.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series[key] = float(value)
    health = summary.get("health")
    if isinstance(health, dict):
        for key, value in health.items():
            if isinstance(value, (int, float)):
                series[f"health.{key}"] = float(value)
    if isinstance(doc.get("ticks"), (int, float)):
        series["ticks"] = float(doc["ticks"])
    reb = doc.get("rebalances") or {}
    for key in ("applied", "evaluated"):
        if isinstance(reb.get(key), (int, float)):
            series[f"rebalances.{key}"] = float(reb[key])
    for det in doc.get("phenomena") or []:
        key = f"phenomena.{det.get('phenomenon', 'unknown')}"
        series[key] = series.get(key, 0.0) + 1.0
    prov = doc.get("provenance") or {}
    topo = doc.get("topology") or {}
    meta = {
        "engine": prov.get("engine"),
        "strategy": prov.get("strategy"),
        "budget_w": prov.get("budget_w"),
        "n_nodes": topo.get("n_nodes"),
        "git": prov.get("git"),
        "package_version": prov.get("package_version"),
    }
    return series, meta


# ----------------------------------------------------------------------
# Trend engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrendRule:
    """Drift rule for one series (or a suffix family of series)."""

    series: str
    #: Whether larger values are good (throughput) or bad (latency).
    higher_is_better: bool = True
    #: Relative median shift in the bad direction that flags drift.
    threshold: float = 0.20


#: Explicit rules for the headline series; anything not listed falls
#: back to :func:`rule_for_series`'s suffix heuristics.
DEFAULT_TREND_RULES: Tuple[TrendRule, ...] = (
    TrendRule("runs_per_s", higher_is_better=True, threshold=0.20),
    TrendRule("batch_runs_per_s", higher_is_better=True, threshold=0.20),
    TrendRule("node_steps_per_s", higher_is_better=True, threshold=0.20),
    TrendRule("parallel_speedup", higher_is_better=True, threshold=0.20),
    TrendRule("single_run.speedup", higher_is_better=True, threshold=0.20),
    TrendRule("single_run.engagement", higher_is_better=True, threshold=0.10),
    TrendRule("rate_cache.hit_rate", higher_is_better=True, threshold=0.25),
)

#: Suffixes treated as "lower is better" (latencies, wall clocks).
_LOWER_BETTER_SUFFIXES = ("_s", "_ms", ".wall_s", "_j")
#: Suffixes treated as "higher is better" (rates, ratios).
_HIGHER_BETTER_SUFFIXES = ("_per_s", ".speedup", ".engagement", ".hit_rate")


def rule_for_series(
    series: str, rules: Sequence[TrendRule] = DEFAULT_TREND_RULES
) -> TrendRule:
    """The governing rule for one series name.

    Exact matches win, then prefix matches on the rule name (so
    ``runs_per_s`` also governs ``jobs4.runs_per_s`` via the suffix
    heuristics below), then direction is inferred from the name's
    suffix; the default is higher-is-better with a 20% threshold.
    """
    for rule in rules:
        if rule.series == series:
            return rule
    for suffix in _HIGHER_BETTER_SUFFIXES:
        if series.endswith(suffix):
            return TrendRule(series, higher_is_better=True, threshold=0.20)
    for suffix in _LOWER_BETTER_SUFFIXES:
        if series.endswith(suffix):
            return TrendRule(series, higher_is_better=False, threshold=0.20)
    return TrendRule(series, higher_is_better=True, threshold=0.20)


@dataclass
class Trend:
    """One series' drift verdict against its reference."""

    series: str
    kind: Optional[str]
    n: int
    reference: Optional[float]
    recent: Optional[float]
    shift: Optional[float]
    #: ``regression`` | ``improvement`` | ``stable`` | ``insufficient``
    verdict: str
    higher_is_better: bool
    threshold: float
    values: List[float] = field(default_factory=list)

    @property
    def is_regression(self) -> bool:
        """Whether this series drifted in the bad direction."""
        return self.verdict == "regression"

    def to_dict(self) -> dict:
        """JSON-ready representation (for ``--format json``)."""
        return {
            "series": self.series,
            "kind": self.kind,
            "n": self.n,
            "reference": self.reference,
            "recent": self.recent,
            "shift": self.shift,
            "verdict": self.verdict,
            "higher_is_better": self.higher_is_better,
            "threshold": self.threshold,
            "values": self.values,
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_trends(
    archive: ObsArchive,
    series: Optional[Sequence[str]] = None,
    kind: Optional[str] = None,
    window: int = 3,
    baseline: Optional[str] = None,
    rules: Sequence[TrendRule] = DEFAULT_TREND_RULES,
) -> List[Trend]:
    """Median-shift drift verdicts across archived run series.

    For each series the *recent* level is the median of the last
    ``window`` run values; the *reference* is the named baseline's
    value when ``baseline`` is given and holds the series, otherwise
    the median of everything before the window.  A relative shift
    beyond the rule's threshold in the bad direction is a
    ``regression``; beyond it in the good direction an
    ``improvement``; too little history (or a zero reference) is
    ``insufficient`` and never fails a ``--check``.
    """
    if window < 1:
        raise ConfigError("trend window must be at least 1")
    names = list(series) if series else archive.run_series_names(kind)
    base_values = archive.baseline(baseline) if baseline else {}
    trends: List[Trend] = []
    for name in names:
        history = archive.series_history(name, kind=kind)
        values = [v for _, _, v in history]
        rule = rule_for_series(name, rules)
        n = len(values)
        recent_window = values[-window:]
        reference: Optional[float] = None
        if name in base_values:
            reference = base_values[name]
        elif n > len(recent_window):
            reference = _median(values[: n - len(recent_window)])
        if not recent_window or reference is None or reference == 0:
            trends.append(
                Trend(
                    series=name,
                    kind=kind,
                    n=n,
                    reference=reference,
                    recent=_median(recent_window) if recent_window else None,
                    shift=None,
                    verdict="insufficient",
                    higher_is_better=rule.higher_is_better,
                    threshold=rule.threshold,
                    values=values,
                )
            )
            continue
        recent = _median(recent_window)
        shift = (recent - reference) / abs(reference)
        bad = -shift if rule.higher_is_better else shift
        if bad >= rule.threshold:
            verdict = "regression"
        elif -bad >= rule.threshold:
            verdict = "improvement"
        else:
            verdict = "stable"
        trends.append(
            Trend(
                series=name,
                kind=kind,
                n=n,
                reference=reference,
                recent=recent,
                shift=shift,
                verdict=verdict,
                higher_is_better=rule.higher_is_better,
                threshold=rule.threshold,
                values=values,
            )
        )
    return trends


# ----------------------------------------------------------------------
# Background metrics recorder
# ----------------------------------------------------------------------


class MetricsRecorder:
    """Background thread landing periodic metric scrapes in an archive.

    ``sample()`` is the callable returning the ``(name, labels,
    value)`` sample list (typically
    :meth:`~repro.obs.metrics.ServiceMetrics.sample_all`).  Histogram
    bucket rows are skipped by default — the ``_sum`` / ``_count``
    pair already carries the longitudinal story at a fraction of the
    rows.  Retention runs opportunistically every
    ``prune_every`` scrapes so no series outgrows
    ``retention`` rows by more than one period's worth.
    """

    def __init__(
        self,
        archive: ObsArchive,
        sample: Callable[[], "List[Tuple[str, Dict[str, str], float]]"],
        period_s: float = DEFAULT_SNAPSHOT_PERIOD_S,
        retention: int = DEFAULT_SNAPSHOT_RETENTION,
        include_buckets: bool = False,
        prune_every: int = 64,
    ) -> None:
        if period_s <= 0:
            raise ConfigError("snapshot period must be positive")
        self._archive = archive
        self._sample = sample
        self.period_s = float(period_s)
        self._retention = int(retention)
        self._include_buckets = bool(include_buckets)
        self._prune_every = max(1, int(prune_every))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_ts: Optional[float] = None
        self.snapshots = 0
        self.rows = 0

    def snapshot_once(self, ts: Optional[float] = None) -> int:
        """Take one scrape now; returns rows written (also used by tests)."""
        now = time.time() if ts is None else float(ts)
        dt = 0.0 if self._last_ts is None else max(0.0, now - self._last_ts)
        samples = self._sample()
        if not self._include_buckets:
            samples = [
                s for s in samples if not s[0].endswith("_bucket")
            ]
        rows = self._archive.record_snapshot(samples, ts=now, dt_s=dt)
        self._last_ts = now
        self.snapshots += 1
        self.rows += rows
        if self.snapshots % self._prune_every == 0:
            self._archive.prune_snapshots(self._retention)
        return rows

    def _loop(self) -> None:
        while not self._stop.wait(self.period_s):
            try:
                self.snapshot_once()
            except sqlite3.Error as exc:  # pragma: no cover — disk faults
                _log.warning("snapshot_failed", error=str(exc))

    def start(self) -> "MetricsRecorder":
        """Begin periodic scraping on a daemon thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-obs-recorder", daemon=True
            )
            self._thread.start()
            _log.info(
                "recorder_started",
                archive=self._archive.path,
                period_s=self.period_s,
            )
        return self

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the thread (taking one last scrape by default)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_snapshot:
            try:
                self.snapshot_once()
            except sqlite3.Error:  # pragma: no cover — disk faults
                pass
