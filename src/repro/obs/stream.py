"""Live event streaming: a bounded pub/sub bus behind the SSE API.

Everything the observability layer records *after* a run — telemetry
buckets, phenomenon detections, job lifecycle transitions, fleet
health rollups — can also be watched *during* the run.  This module is
the transport: a process-wide, thread-safe publish/subscribe bus whose
subscribers are bounded (drop-oldest backpressure with an accurate
dropped-events counter) and whose topics keep a bounded replay history
so an HTTP client can reconnect with ``Last-Event-ID`` and miss
nothing that is still in the ring.

Design constraints, in order:

1. **Publishing never perturbs the simulation.**  Events carry plain
   JSON-ready dicts built from values the engine already computed; the
   bus draws no random numbers and touches no model state, so results
   are bit-identical with zero, one, or fifty subscribers (the tier-1
   suite asserts byte-equality of serialized results).
2. **Slow subscribers cannot stall publishers.**  ``publish`` only
   appends to bounded deques; a full subscriber queue drops its oldest
   event and counts the drop (``repro_stream_dropped_total``).  A
   subscriber that keeps up loses nothing.
3. **Runs that nobody watches pay (almost) nothing.**  Publishers in
   the engine are gated on a thread-local *stream context* installed
   by the job scheduler: CLI runs and benchmark loops have no context,
   so the per-bucket cost is one ``None`` check.

Topics are strings: ``job:<id>`` for one run's telemetry + detector +
lifecycle events, ``fleet`` for fleet health rollups.  Sequence
numbers are per-topic and monotonic from 1; they double as SSE event
ids, so ``Last-Event-ID: 17`` resumes after event 17.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "StreamEvent",
    "Subscription",
    "EventBus",
    "event_bus",
    "reset_event_bus",
    "stream_context",
    "current_stream",
    "stream_publish",
    "JOB_TOPIC_PREFIX",
    "FLEET_TOPIC",
    "TERMINAL_EVENT_KINDS",
]

JOB_TOPIC_PREFIX = "job:"
FLEET_TOPIC = "fleet"

#: Event kinds that end a job stream (the SSE handler closes cleanly
#: after forwarding one of these).
TERMINAL_EVENT_KINDS = frozenset({"job_done", "job_failed", "job_cancelled"})


class StreamEvent(NamedTuple):
    """One published event: per-topic sequence id, kind, JSON-ready data."""

    seq: int
    kind: str
    data: dict


class Subscription:
    """One subscriber's bounded view of a topic.

    Events land in a bounded deque; when full, the **oldest** queued
    event is dropped (and counted) so the subscriber always converges
    toward the live edge instead of stalling the publisher.
    """

    def __init__(self, topic: str, maxlen: int) -> None:
        self.topic = topic
        self.maxlen = int(maxlen)
        self.dropped = 0
        self._queue: Deque[StreamEvent] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._wakeup: Optional[Callable[[], None]] = None

    def set_wakeup(self, callback: Optional[Callable[[], None]]) -> None:
        """Attach a thread-safe wakeup hook fired on arrival and close.

        The asyncio front end bridges subscriptions onto the event loop
        with this: the hook is typically
        ``loop.call_soon_threadsafe(event.set)``.  The callback must be
        safe to invoke from any thread and must not block.  If events
        are already queued (or the subscription is closed) the hook
        fires immediately so no arrival is missed across attachment.
        """
        with self._cond:
            self._wakeup = callback
            pending = bool(self._queue) or self._closed
        if pending and callback is not None:
            callback()

    def _offer(self, event: StreamEvent) -> bool:
        """Enqueue one event, dropping the oldest when full (bus-side).

        Returns True when an event was dropped to make room, so the
        bus can keep its process-wide dropped counter exact even with
        concurrent publishers.
        """
        with self._cond:
            if self._closed:
                return False
            dropped = len(self._queue) >= self.maxlen
            if dropped:
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(event)
            self._cond.notify_all()
            wakeup = self._wakeup
        if wakeup is not None:
            wakeup()
        return dropped

    def get(self, timeout: Optional[float] = None) -> Optional[StreamEvent]:
        """Next event, or None on timeout / after :meth:`close`."""
        with self._cond:
            if not self._queue and not self._closed:
                self._cond.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until an event is queued or the subscription closes.

        Unlike :meth:`get` this consumes nothing — poll-style callers
        (the shared SSE stream sessions) drain separately and use this
        only to sleep efficiently between polls.  Returns True when an
        event is waiting.
        """
        with self._cond:
            if not self._queue and not self._closed:
                self._cond.wait(timeout)
            return bool(self._queue)

    def pending(self) -> int:
        """Events currently queued."""
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Detach from the bus; wakes any blocked :meth:`get`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            wakeup = self._wakeup
        if wakeup is not None:
            wakeup()


class _Topic:
    """Bus-internal per-topic state (guarded by the bus lock)."""

    __slots__ = ("seq", "history", "subscribers")

    def __init__(self, history: int) -> None:
        self.seq = 0
        self.history: Deque[StreamEvent] = deque(maxlen=history)
        self.subscribers: List[Subscription] = []


class EventBus:
    """Bounded, thread-safe pub/sub with per-topic replay history.

    One lock guards topic state: ``subscribe`` snapshots the replay
    history and registers the subscriber atomically, so an attaching
    client sees every retained event exactly once with no gap between
    replay and live delivery — the property the SSE ``Last-Event-ID``
    contract needs.
    """

    def __init__(
        self, history: int = 512, queue_size: int = 1024
    ) -> None:
        if history < 1 or queue_size < 1:
            raise ValueError("history and queue_size must be >= 1")
        self._history = int(history)
        self._queue_size = int(queue_size)
        self._lock = threading.Lock()
        self._topics: Dict[str, _Topic] = {}
        self._published = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self, topic: str, kind: str, data: dict) -> int:
        """Publish one event; returns its per-topic sequence id.

        Events are retained in the topic's bounded history even with
        zero subscribers, so a client attaching mid-run can replay the
        recent past.
        """
        with self._lock:
            state = self._topics.get(topic)
            if state is None:
                state = self._topics[topic] = _Topic(self._history)
            state.seq += 1
            event = StreamEvent(state.seq, kind, data)
            state.history.append(event)
            self._published += 1
            subscribers = list(state.subscribers)
        drops = sum(1 for sub in subscribers if sub._offer(event))
        if drops:
            with self._lock:
                self._dropped += drops
        return event.seq

    # ------------------------------------------------------------------
    # Subscribing
    # ------------------------------------------------------------------

    def subscribe(
        self,
        topic: str,
        last_event_id: Optional[int] = None,
        queue_size: Optional[int] = None,
    ) -> Subscription:
        """Attach to ``topic``, replaying retained history first.

        ``last_event_id`` skips events with ``seq <= last_event_id``
        (the SSE reconnect contract); None replays everything still in
        the ring.  The replay snapshot and the live registration happen
        under one lock, so no event is missed or duplicated across the
        boundary.
        """
        sub = Subscription(topic, queue_size or self._queue_size)
        floor = -1 if last_event_id is None else int(last_event_id)
        with self._lock:
            state = self._topics.get(topic)
            if state is None:
                state = self._topics[topic] = _Topic(self._history)
            replay = [e for e in state.history if e.seq > floor]
            state.subscribers.append(sub)
        for event in replay:
            sub._offer(event)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach ``sub`` (idempotent) and close it."""
        with self._lock:
            state = self._topics.get(sub.topic)
            if state is not None and sub in state.subscribers:
                state.subscribers.remove(sub)
        sub.close()

    # ------------------------------------------------------------------
    # Introspection (feeds the stream metrics panel)
    # ------------------------------------------------------------------

    def published_total(self) -> int:
        """Events published across all topics since construction."""
        with self._lock:
            return self._published

    def dropped_total(self) -> int:
        """Events dropped by slow subscribers, bus-wide."""
        with self._lock:
            return self._dropped

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        """Live subscribers on ``topic`` (or bus-wide when None)."""
        with self._lock:
            if topic is not None:
                state = self._topics.get(topic)
                return len(state.subscribers) if state else 0
            return sum(len(t.subscribers) for t in self._topics.values())

    def has_subscribers(self, topic: str) -> bool:
        """Cheap gate for publishers with per-tick cadence."""
        with self._lock:
            state = self._topics.get(topic)
            return bool(state and state.subscribers)

    def last_seq(self, topic: str) -> int:
        """The topic's latest sequence id (0 before any publish)."""
        with self._lock:
            state = self._topics.get(topic)
            return state.seq if state else 0

    def topics(self) -> List[str]:
        """Topic names that have seen a publish or a subscribe."""
        with self._lock:
            return sorted(self._topics)


_bus_lock = threading.Lock()
_bus: "EventBus | None" = None


def event_bus() -> EventBus:
    """The process-wide :class:`EventBus` singleton."""
    global _bus
    if _bus is None:
        with _bus_lock:
            if _bus is None:
                _bus = EventBus()
    return _bus


def reset_event_bus() -> None:
    """Discard the singleton (tests only — live subscriptions orphan)."""
    global _bus
    with _bus_lock:
        _bus = None


# ----------------------------------------------------------------------
# Thread-local stream context
# ----------------------------------------------------------------------

_ctx = threading.local()


@contextmanager
def stream_context(topic: str):
    """Route this thread's engine publishers to ``topic``.

    Installed by the job scheduler around each sweep so the
    :class:`~repro.obs.timeseries.TelemetrySampler` and the phenomenon
    detectors publish into the job's stream without any plumbing
    through the engine layers.  Nests (inner context wins).
    """
    prev = getattr(_ctx, "topic", None)
    _ctx.topic = topic
    try:
        yield
    finally:
        _ctx.topic = prev


def current_stream() -> Optional[str]:
    """The active stream topic on this thread, or None."""
    return getattr(_ctx, "topic", None)


def stream_publish(kind: str, data: dict) -> Optional[int]:
    """Publish into this thread's stream context (no-op without one).

    The single call engine-side publishers make: one attribute read
    when no context is installed, so unobserved runs stay free.
    """
    topic = getattr(_ctx, "topic", None)
    if topic is None:
        return None
    return event_bus().publish(topic, kind, data)
