"""Phenomenon detectors: scan telemetry timelines for the paper's story.

The paper's headline observations are *shapes in time series*, not
single numbers: average frequency pins to the 1,200 MHz floor once the
cap drops to 130 W; the DCM control loop overshoots a freshly applied
cap and settles; total energy turns upward (the "knee") once capping
slows the run more than it saves power.  These detectors read the
:class:`~repro.obs.timeseries.RunTimeline` channels recorded during a
sweep and turn those shapes into structured :class:`Detection` records
— logged as ``phenomenon_detected`` events, counted in the
``repro_telemetry_detections_total`` metric, and attached to the
result's provenance manifest under ``phenomena``.

Thresholds default to values tuned against the reproduction's own
default sweep (caps 160..120 W): the frequency-floor detector flags
every cap ≤ 130 W and no cap ≥ 145 W, matching Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .logging import get_logger
from .metrics import telemetry_metrics
from .stream import stream_publish

__all__ = [
    "Detection",
    "detect_frequency_floor",
    "detect_cap_overshoot",
    "detect_energy_knee",
    "scan_timeline",
    "scan_experiment",
]

_log = get_logger("obs.detect")

#: Frequencies within this many MHz of the floor count as pinned: the
#: 16-entry P-state table spaces states ~100 MHz apart, so this is the
#: dither band of the bottom two or three states — DVFS exhausted, the
#: controller grinding against the floor.  On the default sweep this
#: flags caps ≤ 130 W (means 1,393–1,427 MHz) and not 135 W (≥ 1,747).
FREQ_FLOOR_TOL_MHZ = 250.0
#: Fraction of covered time that must sit at the floor to flag pinning.
FREQ_FLOOR_MIN_FRACTION = 0.60
#: Watts above the cap that count as overshoot (above meter noise).
CAP_OVERSHOOT_TOL_W = 1.0
#: Energy rise over the sweep minimum that marks the knee onset.
ENERGY_KNEE_RISE_FRACTION = 0.02


@dataclass(frozen=True)
class Detection:
    """One detected phenomenon in one timeline (or across a sweep)."""

    phenomenon: str
    workload: str
    cap_w: Optional[float]
    detail: Dict[str, float]

    def to_dict(self) -> dict:
        """JSON-ready representation (provenance annotation)."""
        return {
            "phenomenon": self.phenomenon,
            "workload": self.workload,
            "cap_w": self.cap_w,
            "detail": dict(self.detail),
        }


def detect_frequency_floor(
    timeline,
    floor_mhz: float,
    tol_mhz: float = FREQ_FLOOR_TOL_MHZ,
    min_fraction: float = FREQ_FLOOR_MIN_FRACTION,
) -> Optional[Detection]:
    """Flag a run whose frequency sat pinned at the P-state floor.

    Pinned means the ``freq_mhz`` channel's mean stayed within
    ``tol_mhz`` of ``floor_mhz`` for at least ``min_fraction`` of the
    covered time.  The paper reports exactly this at caps ≤ 130 W
    (Table II's 1,200 MHz rows).
    """
    if timeline is None or "freq_mhz" not in timeline.channels:
        return None
    channel = timeline.channels["freq_mhz"]
    total = channel.duration_s()
    if total <= 0:
        return None
    pinned = sum(
        p.dt_s for p in channel.points() if p.mean <= floor_mhz + tol_mhz
    )
    fraction = pinned / total
    if fraction < min_fraction:
        return None
    return Detection(
        phenomenon="freq_floor",
        workload=timeline.workload,
        cap_w=timeline.cap_w,
        detail={
            "floor_mhz": float(floor_mhz),
            "tol_mhz": float(tol_mhz),
            "pinned_fraction": round(fraction, 4),
            "pinned_s": round(pinned, 3),
        },
    )


def detect_cap_overshoot(
    timeline,
    tol_w: float = CAP_OVERSHOOT_TOL_W,
) -> Optional[Detection]:
    """Flag the DCM control loop's overshoot of a fresh cap.

    Every capped run starts at P0 (uncapped power), so true node power
    exceeds the cap until the escalation ladder bites; the detection
    reports the peak excess and the settling time — the earliest
    instant after which the ``power_w`` channel's bucket means never
    exceed ``cap + tol_w`` again.
    """
    if timeline is None or timeline.cap_w is None:
        return None
    if "power_w" not in timeline.channels:
        return None
    cap = timeline.cap_w
    points = timeline.channels["power_w"].points()
    over = [p for p in points if p.mean > cap + tol_w]
    if not over:
        return None
    peak = max(p.vmax for p in over)
    settling_s = max(p.end_s for p in over)
    return Detection(
        phenomenon="cap_overshoot",
        workload=timeline.workload,
        cap_w=cap,
        detail={
            "peak_w": round(peak, 3),
            "overshoot_w": round(peak - cap, 3),
            "settling_s": round(settling_s, 3),
            "tol_w": float(tol_w),
        },
    )


def detect_energy_knee(
    workload: str,
    energy_by_cap: Dict[float, float],
    rise_fraction: float = ENERGY_KNEE_RISE_FRACTION,
) -> Optional[Detection]:
    """Find the sweep's energy-knee onset cap.

    Walking the caps from highest to lowest, the knee is the highest
    cap whose energy exceeds the sweep's minimum by more than
    ``rise_fraction`` *and* below which energy never recovers — the
    point where capping starts costing energy instead of saving it
    (the paper places it below 135 W).
    """
    if len(energy_by_cap) < 3:
        return None
    e_min = min(energy_by_cap.values())
    if e_min <= 0:
        return None
    caps = sorted(energy_by_cap, reverse=True)
    knee = None
    for i, cap in enumerate(caps):
        rise = energy_by_cap[cap] / e_min - 1.0
        below = caps[i:]
        if rise > rise_fraction and all(
            energy_by_cap[c] / e_min - 1.0 > rise_fraction / 2 for c in below
        ):
            knee = cap
            break
    if knee is None:
        return None
    return Detection(
        phenomenon="energy_knee",
        workload=workload,
        cap_w=knee,
        detail={
            "knee_cap_w": float(knee),
            "min_energy_j": round(e_min, 3),
            "rise_fraction": round(energy_by_cap[knee] / e_min - 1.0, 4),
            "threshold": float(rise_fraction),
        },
    )


def scan_timeline(
    timeline, floor_mhz: float
) -> List[Detection]:
    """All per-run detections for one timeline."""
    detections = []
    for det in (
        detect_frequency_floor(timeline, floor_mhz),
        detect_cap_overshoot(timeline),
    ):
        if det is not None:
            detections.append(det)
    return detections


def scan_experiment(result, floor_mhz: float) -> List[Detection]:
    """Scan a whole sweep: per-cap timelines plus the energy knee.

    Every detection is logged as a ``phenomenon_detected`` event and
    counted in ``repro_telemetry_detections_total``; the caller usually
    also attaches ``[d.to_dict() for d in detections]`` to provenance.
    """
    detections: List[Detection] = []
    rows = [result.baseline] + [
        result.by_cap[c] for c in sorted(result.by_cap, reverse=True)
    ]
    for row in rows:
        detections.extend(scan_timeline(row.timeline, floor_mhz))
    energy_by_cap = {
        cap: row.energy_j for cap, row in result.by_cap.items()
    }
    knee = detect_energy_knee(result.workload, energy_by_cap)
    if knee is not None:
        detections.append(knee)
    for det in detections:
        _log.info(
            "phenomenon_detected",
            phenomenon=det.phenomenon,
            workload=det.workload,
            cap_w=det.cap_w,
            **det.detail,
        )
        stream_publish("detection", det.to_dict())
    if detections:
        telemetry_metrics().observe_detections(
            [d.phenomenon for d in detections]
        )
    return detections
