"""Span tracing: attribute a sweep's wall clock to engine phases.

A *span* is a named, timed region of code with optional attributes::

    with span("simulate_trace", workload="stereo", gating=key):
        ...

    @span("store_write")
    def put_result(...): ...

Spans nest through a thread-local stack (each records its parent), are
exception-safe (the timing is recorded and the error flagged even when
the body raises), and are timed with ``time.perf_counter``.

Two sinks consume them:

- a process-wide **phase accumulator** — cumulative seconds and counts
  per span name, always on (two monotonic reads and a dict update per
  span, nothing per control quantum), feeding run provenance and the
  ``repro_engine_phase_seconds`` metric;
- an optional :class:`TraceCollector` — installed via
  :func:`start_tracing` (the CLI's ``--trace-out``), it records every
  span as an event and can serialise the lot as Chrome
  ``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto.

:func:`set_enabled` exists for the benchmark suite: it turns ``span``
into a near-total no-op so instrumentation overhead can be measured
against a true baseline.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "span",
    "TraceCollector",
    "start_tracing",
    "stop_tracing",
    "current_collector",
    "current_span_stack",
    "span_stacks_by_thread",
    "phase_totals",
    "reset_phase_totals",
    "set_enabled",
    "tracing_enabled",
]

_local = threading.local()

_phase_lock = threading.Lock()
#: name -> [total seconds, count]
_phase_acc: Dict[str, List[float]] = {}

#: thread id -> that thread's live span-stack list (the same object
#: ``_local.stack`` holds).  The sampling profiler reads these from its
#: own thread; entries are shared mutable lists, so a reader only ever
#: takes a cheap snapshot (``list(stack)``) and tolerates a concurrent
#: push/pop — the GIL keeps list operations atomic.
_stacks_lock = threading.Lock()
_stacks_by_thread: Dict[int, list] = {}

_collector: "TraceCollector | None" = None
_enabled = True


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
        with _stacks_lock:
            _stacks_by_thread[threading.get_ident()] = stack
    return stack


def span_stacks_by_thread() -> Dict[int, Tuple[str, ...]]:
    """Snapshot of every thread's open span names, outermost first.

    Cross-thread view for the sampling profiler; threads that never
    opened a span are absent.
    """
    with _stacks_lock:
        items = list(_stacks_by_thread.items())
    return {tid: tuple(s.name for s in stack) for tid, stack in items}


def current_span_stack() -> Tuple[str, ...]:
    """Names of the open spans on this thread, outermost first."""
    return tuple(s.name for s in _stack())


def phase_totals() -> Dict[str, Dict[str, float]]:
    """Cumulative ``{span name: {"seconds": s, "count": n}}`` so far."""
    with _phase_lock:
        return {
            name: {"seconds": acc[0], "count": acc[1]}
            for name, acc in _phase_acc.items()
        }


def reset_phase_totals() -> None:
    """Zero the process-wide phase accumulator (tests/benchmarks)."""
    with _phase_lock:
        _phase_acc.clear()


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable span bookkeeping (benchmark baseline)."""
    global _enabled
    _enabled = bool(enabled)


def tracing_enabled() -> bool:
    """Whether span bookkeeping is currently enabled."""
    return _enabled


class TraceCollector:
    """In-memory, thread-safe store of finished span events.

    Events are plain dicts (``name``, ``ts``/``dur`` in seconds on the
    ``perf_counter`` clock, ``tid``, ``parent``, ``error``, ``args``);
    :meth:`chrome_trace` converts them to the Chrome ``trace_event``
    format and :meth:`dump` writes that JSON to a file.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._counters: List[dict] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def add(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: Optional[str],
        error: bool,
        args: dict,
    ) -> None:
        """Record one finished span (called by ``span.__exit__``)."""
        event = {
            "name": name,
            "ts": t0,
            "dur": t1 - t0,
            "tid": threading.get_ident(),
            "parent": parent,
            "error": error,
            "args": args,
        }
        with self._lock:
            self._events.append(event)

    def events(self) -> List[dict]:
        """A snapshot copy of every recorded span event."""
        with self._lock:
            return list(self._events)

    def add_counter(
        self, name: str, ts: float, values: Dict[str, float]
    ) -> None:
        """Record one counter sample (telemetry channel values).

        ``ts`` is seconds on the ``perf_counter`` clock (same clock as
        span events).  Counters are kept separate from span events so
        :meth:`span_totals` and :meth:`events` are unaffected; they
        surface as Chrome ``"ph": "C"`` counter-track events in
        :meth:`chrome_trace`.
        """
        record = {
            "name": name,
            "ts": ts,
            "tid": threading.get_ident(),
            "values": {k: float(v) for k, v in values.items()},
        }
        with self._lock:
            self._counters.append(record)

    def counter_events(self) -> List[dict]:
        """A snapshot copy of every recorded counter sample."""
        with self._lock:
            return list(self._counters)

    def span_totals(self) -> Dict[str, float]:
        """Total seconds per span name across all recorded events."""
        totals: Dict[str, float] = {}
        for event in self.events():
            totals[event["name"]] = totals.get(event["name"], 0.0) + event["dur"]
        return totals

    def chrome_trace(self) -> dict:
        """The events as a Chrome ``trace_event`` JSON object.

        Complete (``"ph": "X"``) events with microsecond ``ts``/``dur``
        on a common origin, one row per thread — loadable directly in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events = self.events()
        counters = self.counter_events()
        origin = min(
            (e["ts"] for e in events + counters), default=0.0
        )
        pid = os.getpid()
        trace_events = []
        for event in events:
            args = {k: _jsonable(v) for k, v in event["args"].items()}
            if event["parent"]:
                args["parent"] = event["parent"]
            if event["error"]:
                args["error"] = True
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "X",
                    "pid": pid,
                    "tid": event["tid"],
                    "ts": (event["ts"] - origin) * 1e6,
                    "dur": event["dur"] * 1e6,
                    "cat": "repro",
                    "args": args,
                }
            )
        for counter in counters:
            trace_events.append(
                {
                    "name": counter["name"],
                    "ph": "C",
                    "pid": pid,
                    "tid": counter["tid"],
                    "ts": (counter["ts"] - origin) * 1e6,
                    "cat": "repro.telemetry",
                    "args": counter["values"],
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def dump(self, path: "str | os.PathLike") -> None:
        """Write :meth:`chrome_trace` JSON to ``path``."""
        Path(path).write_text(json.dumps(self.chrome_trace(), indent=1))


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def start_tracing(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Install (and return) the process-wide span collector."""
    global _collector
    _collector = collector or TraceCollector()
    return _collector


def stop_tracing() -> "TraceCollector | None":
    """Uninstall and return the active collector (None if none)."""
    global _collector
    collector, _collector = _collector, None
    return collector


def current_collector() -> "TraceCollector | None":
    """The installed collector, or None when tracing is off."""
    return _collector


class span:
    """Context manager / decorator timing one named engine phase.

    As a context manager each instance is single-use; as a decorator it
    opens a fresh span (same name and attributes) per call.  Timings
    land in the phase accumulator always and in the active
    :class:`TraceCollector` when one is installed; an exception inside
    the body still closes the span, flagged with ``error=True``.
    """

    __slots__ = ("name", "attrs", "_t0", "_parent", "_active")

    def __init__(self, name: str, **attrs) -> None:
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._parent: Optional[str] = None
        self._active = False

    def __enter__(self) -> "span":
        if not _enabled:
            return self
        stack = _stack()
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._active = True
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        t1 = time.perf_counter()
        self._active = False
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover — defensive unwinding
            stack.remove(self)
        with _phase_lock:
            acc = _phase_acc.get(self.name)
            if acc is None:
                _phase_acc[self.name] = [t1 - self._t0, 1.0]
            else:
                acc[0] += t1 - self._t0
                acc[1] += 1.0
        collector = _collector
        if collector is not None:
            collector.add(
                self.name,
                self._t0,
                t1,
                self._parent,
                exc_type is not None,
                self.attrs,
            )
        return False

    def __call__(self, fn: Callable) -> Callable:
        """Decorate ``fn`` so every call runs inside a fresh span."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(self.name, **self.attrs):
                return fn(*args, **kwargs)

        return wrapper
