"""Run provenance: tie a stored result to what produced it.

A *provenance manifest* is a plain JSON-ready dict attached to every
:class:`~repro.core.experiment.ExperimentResult`, recording everything
needed to reproduce (or distrust) the numbers:

- the node-config digest and the workload's behavioural spec,
- the experiment seed, caps, repetitions, and slice length,
- the package version and (best-effort) ``git describe`` of the code,
- rate-cache identity and hit/miss counters at sweep end,
- how the sweep actually executed (effective worker count after the
  single-core fallback, batch-engine engagement counters, warm-worker
  reuse),
- cumulative per-phase span seconds (from :mod:`repro.obs.tracing`)
  spent producing this result.

Manifests travel through :mod:`repro.core.serialize` and the SQLite
result store unchanged, and ``repro-powercap inspect`` pretty-prints
them for a result file or a stored job.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "config_digest",
    "git_describe",
    "build_provenance",
    "render_provenance",
]

PROVENANCE_SCHEMA_VERSION = 1

_git_describe_cache: "str | None | bool" = False  # False = not probed yet


def config_digest(config) -> str:
    """Stable digest of a frozen :class:`NodeConfig`'s full repr."""
    return hashlib.blake2b(repr(config).encode(), digest_size=16).hexdigest()


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, if any.

    Best-effort and cached per process: returns None when the package
    does not live in a git checkout or git is unavailable.
    """
    global _git_describe_cache
    if _git_describe_cache is False:
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5.0,
            )
            _git_describe_cache = (
                out.stdout.strip() if out.returncode == 0 else None
            ) or None
        except (OSError, subprocess.SubprocessError):
            _git_describe_cache = None
    return _git_describe_cache


def build_provenance(
    *,
    config,
    workload,
    seed: int,
    caps_w,
    repetitions: int,
    slice_accesses: int,
    rate_cache=None,
    phase_seconds: Optional[Dict[str, float]] = None,
    execution: Optional[dict] = None,
) -> dict:
    """Assemble one result's provenance manifest (JSON-ready dict)."""
    from .. import __version__

    spec = asdict(workload.spec)
    spec.pop("description", None)
    manifest: dict = {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "package_version": __version__,
        "git": git_describe(),
        "created_at": time.time(),
        "config_digest": config_digest(config),
        "workload": {"type": type(workload).__name__, "spec": spec},
        "seed": int(seed),
        "caps_w": [float(c) for c in caps_w],
        "repetitions": int(repetitions),
        "slice_accesses": int(slice_accesses),
        "rate_cache": None,
        "execution": dict(execution) if execution else None,
        "phase_seconds": {
            k: round(float(v), 6) for k, v in (phase_seconds or {}).items()
        },
    }
    if rate_cache is not None:
        manifest["rate_cache"] = {
            "path": str(rate_cache.path),
            "hits": rate_cache.hits,
            "misses": rate_cache.misses,
            "entries": len(rate_cache),
        }
    # Normalise through JSON so a manifest compares equal after a
    # serialize/store round-trip (tuples become lists up front, etc.).
    return json.loads(json.dumps(manifest, sort_keys=True, default=str))


def _render_block(data, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(data, dict):
        for key in sorted(data):
            value = data[key]
            if isinstance(value, (dict, list)) and value:
                lines.append(f"{pad}{key}:")
                _render_block(value, indent + 1, lines)
            else:
                lines.append(f"{pad}{key}: {_scalar(value)}")
    elif isinstance(data, list):
        for item in data:
            lines.append(f"{pad}- {_scalar(item)}")
    else:  # pragma: no cover — callers pass dicts/lists
        lines.append(f"{pad}{_scalar(data)}")


def _scalar(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_provenance(manifest: Optional[dict], title: str = "") -> str:
    """Human-readable rendering of one manifest (for ``inspect``)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not manifest:
        lines.append("  (no provenance recorded)")
        return "\n".join(lines)
    _render_block(manifest, 1 if title else 0, lines)
    return "\n".join(lines)
