"""Closed-loop group rebalancing.

A static division of a rack budget goes stale the moment workloads
shift — the situation DCM was sold for ("a large number of servers with
varying workloads", Section I-A).  :class:`GroupBalancer` wraps a
:class:`~repro.dcm.group.NodeGroup` in a periodic control loop: on each
tick it recomputes the division from the latest power readings and
reprograms the BMCs — but only when some node's cap would move by more
than a hysteresis threshold, so small demand wobbles don't thrash the
firmware with IPMI traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import PolicyError
from .group import DivisionStrategy, NodeGroup

__all__ = ["GroupBalancer", "RebalanceRecord"]


@dataclass(frozen=True)
class RebalanceRecord:
    """One applied (or skipped) rebalance decision."""

    time_s: float
    applied: bool
    caps_w: Dict[str, float]
    #: Largest per-node cap movement that triggered (or failed to
    #: trigger) the rebalance.
    max_delta_w: float


class GroupBalancer:
    """Hysteretic, periodic re-division of a group budget."""

    def __init__(
        self,
        group: NodeGroup,
        strategy: DivisionStrategy = DivisionStrategy.PROPORTIONAL,
        rebalance_threshold_w: float = 5.0,
    ) -> None:
        if rebalance_threshold_w < 0:
            raise PolicyError("rebalance threshold must be non-negative")
        self._group = group
        self._strategy = strategy
        self._threshold = rebalance_threshold_w
        self._applied_caps: Optional[Dict[str, float]] = None
        self._history: List[RebalanceRecord] = []

    @property
    def group(self) -> NodeGroup:
        """The balanced group."""
        return self._group

    @property
    def applied_caps_w(self) -> Optional[Dict[str, float]]:
        """The caps currently programmed (None before the first tick)."""
        return dict(self._applied_caps) if self._applied_caps else None

    @property
    def history(self) -> List[RebalanceRecord]:
        """Every decision, oldest first."""
        return list(self._history)

    def tick(self, time_s: float) -> RebalanceRecord:
        """Recompute the division and apply it if it moved enough.

        The first tick always applies.  Later ticks apply only when at
        least one node's cap would move by *strictly more* than the
        threshold: a cap delta exactly equal to
        ``rebalance_threshold_w`` does **not** trigger a rebalance (the
        comparison is ``max_delta > threshold``), so a threshold of 0
        means "rebalance on any movement" and the boundary case is
        deliberately quiet.  ``tests/dcm/test_balancer.py`` pins this
        semantics; :mod:`repro.fleet.engine` implements the same rule.
        """
        wanted = self._group.divide(self._strategy)
        if self._applied_caps is None:
            max_delta = float("inf")
        else:
            max_delta = max(
                abs(wanted[n] - self._applied_caps.get(n, 0.0)) for n in wanted
            )
        applied = max_delta > self._threshold
        if applied:
            self._group.apply(self._strategy)
            self._applied_caps = dict(wanted)
        record = RebalanceRecord(
            time_s=float(time_s),
            applied=applied,
            caps_w=dict(wanted),
            max_delta_w=max_delta,
        )
        self._history.append(record)
        return record

    @property
    def rebalance_count(self) -> int:
        """How many ticks actually reprogrammed the BMCs."""
        return sum(1 for r in self._history if r.applied)
