"""DCM alerting.

DCM's value proposition per Section I-A is "cost avoidance in the form
of down time and data corruption resulting from power outages" — i.e.
noticing, before the breaker does, that a node or group is running hot
against its budget.  :class:`AlertLog` collects threshold crossings
raised by the manager's polling loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List

__all__ = ["AlertSeverity", "Alert", "AlertLog"]


class AlertSeverity(Enum):
    """How loudly the operator should be paged."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One threshold crossing."""

    time_s: float
    node_id: str
    severity: AlertSeverity
    message: str


class AlertLog:
    """Append-only alert sink with optional subscribers."""

    def __init__(self) -> None:
        self._alerts: List[Alert] = []
        self._subscribers: List[Callable[[Alert], None]] = []

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        """Register a callback invoked for every new alert."""
        self._subscribers.append(callback)

    def raise_alert(
        self, time_s: float, node_id: str, severity: AlertSeverity, message: str
    ) -> Alert:
        """Record an alert and notify subscribers."""
        alert = Alert(time_s=time_s, node_id=node_id, severity=severity, message=message)
        self._alerts.append(alert)
        for cb in self._subscribers:
            cb(alert)
        return alert

    def all(self) -> List[Alert]:
        """Every alert so far, oldest first."""
        return list(self._alerts)

    def by_severity(self, severity: AlertSeverity) -> List[Alert]:
        """Alerts filtered to one severity."""
        return [a for a in self._alerts if a.severity is severity]

    def for_node(self, node_id: str) -> List[Alert]:
        """Alerts filtered to one node."""
        return [a for a in self._alerts if a.node_id == node_id]

    def __len__(self) -> int:
        return len(self._alerts)
