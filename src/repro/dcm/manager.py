"""The Data Center Manager.

:class:`DataCenterManager` is the management-server process: it keeps a
registry of nodes (each reachable at a LAN address where a
:class:`~repro.bmc.bmc.Bmc` answers), applies capping policies by
sending DCMI commands over the simulated out-of-band transport, polls
power readings, and raises alerts against per-node thresholds.

Everything goes through the IPMI wire format — the manager holds no
reference to node internals, exactly like the real product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import IpmiCommandError, IpmiTransportError, PolicyError
from ..ipmi.commands import (
    ActivatePowerLimitRequest,
    GetPowerLimitRequest,
    GetPowerReadingRequest,
    GetPowerReadingResponse,
    PowerLimitResponse,
    SetPowerLimitRequest,
)
from ..ipmi.messages import IpmiResponse
from ..ipmi.transport import LanTransport
from .events import AlertLog, AlertSeverity
from .policy import CapPolicy, NoCapPolicy

__all__ = ["DataCenterManager", "ManagedNode"]

#: IPMB address of the management server as requester.
DCM_ADDR = 0x81
#: IPMB address BMCs answer on.
BMC_ADDR = 0x20


@dataclass
class ManagedNode:
    """Registry entry for one managed node."""

    node_id: str
    lan_address: str
    policy: CapPolicy = field(default_factory=NoCapPolicy)
    #: Cap currently programmed at the BMC (None = none/disarmed).
    applied_cap_w: Optional[float] = None
    #: Alert threshold: reading above this raises a WARNING.
    warn_threshold_w: Optional[float] = None
    #: Power reading history: (time_s, average_w).
    history: List[tuple] = field(default_factory=list)
    reachable: bool = True
    _seq: int = 0

    def next_seq(self) -> int:
        """Next IPMI sequence number for this node (6-bit, skips 0)."""
        self._seq = (self._seq + 1) & 0x3F or 1
        return self._seq


class DataCenterManager:
    """Management-server logic over the simulated LAN."""

    def __init__(self, transport: LanTransport) -> None:
        self._transport = transport
        self._nodes: Dict[str, ManagedNode] = {}
        self.alerts = AlertLog()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def register_node(
        self,
        node_id: str,
        lan_address: str,
        *,
        policy: CapPolicy | None = None,
        warn_threshold_w: float | None = None,
    ) -> ManagedNode:
        """Add a node to the registry."""
        if node_id in self._nodes:
            raise PolicyError(f"node {node_id!r} already registered")
        entry = ManagedNode(
            node_id=node_id,
            lan_address=lan_address,
            policy=policy or NoCapPolicy(),
            warn_threshold_w=warn_threshold_w,
        )
        self._nodes[node_id] = entry
        return entry

    def node(self, node_id: str) -> ManagedNode:
        """Look a node up by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PolicyError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> List[str]:
        """All registered node ids."""
        return sorted(self._nodes)

    def set_policy(self, node_id: str, policy: CapPolicy) -> None:
        """Replace a node's policy (applied on the next tick)."""
        self.node(node_id).policy = policy

    # ------------------------------------------------------------------
    # IPMI plumbing
    # ------------------------------------------------------------------

    def _roundtrip(self, entry: ManagedNode, message) -> IpmiResponse:
        response = IpmiResponse.decode(
            self._transport.request(entry.lan_address, message.encode())
        )
        if not response.ok:
            raise IpmiCommandError(response.completion_code)
        return response

    def apply_cap(self, node_id: str, cap_w: float | None) -> None:
        """Program and arm (or disarm) a cap at a node's BMC."""
        entry = self.node(node_id)
        if cap_w is None:
            message = ActivatePowerLimitRequest(activate=False).to_message(
                BMC_ADDR, DCM_ADDR, entry.next_seq()
            )
            self._roundtrip(entry, message)
            entry.applied_cap_w = None
            return
        set_msg = SetPowerLimitRequest(limit_w=int(round(cap_w))).to_message(
            BMC_ADDR, DCM_ADDR, entry.next_seq()
        )
        self._roundtrip(entry, set_msg)
        act_msg = ActivatePowerLimitRequest(activate=True).to_message(
            BMC_ADDR, DCM_ADDR, entry.next_seq()
        )
        self._roundtrip(entry, act_msg)
        entry.applied_cap_w = float(int(round(cap_w)))

    def read_power(self, node_id: str) -> GetPowerReadingResponse:
        """Poll a node's power statistics."""
        entry = self.node(node_id)
        message = GetPowerReadingRequest().to_message(
            BMC_ADDR, DCM_ADDR, entry.next_seq()
        )
        response = self._roundtrip(entry, message)
        return GetPowerReadingResponse.from_payload(response.data)

    def read_limit(self, node_id: str) -> PowerLimitResponse:
        """Read a node's programmed limit back."""
        entry = self.node(node_id)
        message = GetPowerLimitRequest().to_message(BMC_ADDR, DCM_ADDR, entry.next_seq())
        response = self._roundtrip(entry, message)
        return PowerLimitResponse.from_payload(response.data)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def tick(self, time_s: float) -> None:
        """One management cycle: apply policies, poll, raise alerts."""
        for entry in self._nodes.values():
            wanted = entry.policy.cap_at(time_s)
            try:
                if wanted != entry.applied_cap_w:
                    self.apply_cap(entry.node_id, wanted)
                reading = self.read_power(entry.node_id)
                if not entry.reachable:
                    entry.reachable = True
                    self.alerts.raise_alert(
                        time_s,
                        entry.node_id,
                        AlertSeverity.INFO,
                        "node reachable again",
                    )
            except IpmiTransportError:
                if entry.reachable:
                    entry.reachable = False
                    self.alerts.raise_alert(
                        time_s,
                        entry.node_id,
                        AlertSeverity.CRITICAL,
                        "node unreachable over the management LAN",
                    )
                continue
            entry.history.append((time_s, reading.average_w))
            if (
                entry.warn_threshold_w is not None
                and reading.current_w > entry.warn_threshold_w
            ):
                self.alerts.raise_alert(
                    time_s,
                    entry.node_id,
                    AlertSeverity.WARNING,
                    f"power {reading.current_w} W above threshold "
                    f"{entry.warn_threshold_w:.0f} W",
                )

    def total_power_w(self) -> float:
        """Sum of the most recent reading of every reachable node."""
        total = 0.0
        for entry in self._nodes.values():
            if entry.history:
                total += entry.history[-1][1]
        return total
