"""DCM power-capping policies.

A policy answers one question: *what cap (if any) should this node have
at time t?*  The paper's experiments use a static cap per run; scheduled
policies model the data-center use DCM was built for (e.g. capping
harder during generator changeovers or demand-response windows).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import PolicyError

__all__ = ["CapPolicy", "NoCapPolicy", "StaticCapPolicy", "ScheduledCapPolicy"]


class CapPolicy(ABC):
    """Base class: maps simulation time to a cap."""

    @abstractmethod
    def cap_at(self, time_s: float) -> float | None:
        """The cap (Watts) in force at ``time_s``; None = uncapped."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return type(self).__name__


class NoCapPolicy(CapPolicy):
    """Never cap — the paper's baseline rows."""

    def cap_at(self, time_s: float) -> float | None:
        return None

    def describe(self) -> str:
        return "uncapped baseline"


@dataclass(frozen=True)
class StaticCapPolicy(CapPolicy):
    """One fixed cap — the paper's nine experimental settings."""

    cap_w: float

    def __post_init__(self) -> None:
        if self.cap_w <= 0:
            raise PolicyError("static cap must be positive")

    def cap_at(self, time_s: float) -> float | None:
        return self.cap_w

    def describe(self) -> str:
        return f"static cap {self.cap_w:.0f} W"


class ScheduledCapPolicy(CapPolicy):
    """Piecewise-constant caps over time windows.

    Windows are ``(start_s, end_s, cap_w_or_None)`` and must be
    non-overlapping; time outside every window is uncapped.
    """

    def __init__(
        self, windows: Sequence[Tuple[float, float, float | None]]
    ) -> None:
        if not windows:
            raise PolicyError("scheduled policy needs at least one window")
        ordered = sorted(windows, key=lambda w: w[0])
        for (s1, e1, _), (s2, _, _) in zip(ordered, ordered[1:]):
            if e1 > s2:
                raise PolicyError("schedule windows overlap")
        for s, e, cap in ordered:
            if e <= s:
                raise PolicyError(f"window ({s}, {e}) is empty or inverted")
            if cap is not None and cap <= 0:
                raise PolicyError("window caps must be positive or None")
        self._windows = tuple(ordered)

    @property
    def windows(self) -> Tuple[Tuple[float, float, float | None], ...]:
        """The schedule, ordered by start time."""
        return self._windows

    def cap_at(self, time_s: float) -> float | None:
        for start, end, cap in self._windows:
            if start <= time_s < end:
                return cap
        return None

    def describe(self) -> str:
        return f"scheduled policy with {len(self._windows)} windows"
