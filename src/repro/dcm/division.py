"""Budget-division semantics shared by the serial and fleet paths.

:func:`divide_budget` is the *single source of truth* for how a group
power budget becomes per-member caps under each
:class:`~repro.dcm.group.DivisionStrategy`.  The serial path
(:meth:`NodeGroup.divide <repro.dcm.group.NodeGroup.divide>`) calls it
member-by-member with Python floats; the vectorized fleet path
(:mod:`repro.fleet.division`) implements the same arithmetic with numpy
arrays and is pinned against this reference by
``tests/fleet/test_division.py`` — so the two implementations cannot
drift without a tier-1 failure.

Semantics (shared contract)
---------------------------
- **EQUAL** — every member is offered ``budget / n``, then clamped to
  its ``[min_cap_w, max_cap_w]`` range.
- **PROPORTIONAL** — member *i* is offered
  ``budget * demand_i / sum(demands)``, then clamped.
- **PRIORITY** — every member starts at its minimum; the remaining
  budget is granted in ``(priority descending, member order)`` order,
  each member receiving up to ``min(demand, max_cap) - min_cap``.

The sum of EQUAL/PRIORITY caps never exceeds the budget when the
budget covers the minima; PROPORTIONAL caps can exceed a member's
share only through the ``min_cap_w`` clamp (same as an infeasible
budget, where every strategy returns at least the minima and the
caller checks :meth:`NodeGroup.feasible`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from ..errors import PolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .group import DivisionStrategy

__all__ = ["DEFAULT_MIN_CAP_W", "DEFAULT_MAX_CAP_W", "divide_budget"]

#: Default per-node clamp range, calibrated to the paper's single-node
#: geometry (idle ≈ 110 W, peak ≈ 200 W).  Groups and fleet node
#: classes may override both per member.
DEFAULT_MIN_CAP_W = 110.0
DEFAULT_MAX_CAP_W = 200.0


def divide_budget(
    budget_w: float,
    strategy: "DivisionStrategy",
    demands_w: Sequence[float],
    min_caps_w: Sequence[float],
    max_caps_w: Sequence[float],
    priorities: Sequence[int],
) -> List[float]:
    """Divide ``budget_w`` into per-member caps (reference semantics).

    All sequences are parallel and in *member order* (the serial path
    uses node-id order; the fleet path uses node-index order).  Returns
    the caps in the same order.  PRIORITY ties are broken by member
    order (earlier members first), matching the serial path's stable
    sort over id-ordered members.
    """
    n = len(demands_w)
    if n == 0:
        raise PolicyError("cannot divide a budget among zero members")
    if not (len(min_caps_w) == len(max_caps_w) == len(priorities) == n):
        raise PolicyError("division inputs must be parallel sequences")
    # Imported here (not at module top) to avoid a cycle: group.py
    # imports divide_budget at module load.
    from .group import DivisionStrategy

    if strategy is DivisionStrategy.EQUAL:
        share = budget_w / n
        return [
            min(max(share, lo), hi) for lo, hi in zip(min_caps_w, max_caps_w)
        ]
    if strategy is DivisionStrategy.PROPORTIONAL:
        total = sum(demands_w)
        caps = []
        for demand, lo, hi in zip(demands_w, min_caps_w, max_caps_w):
            share = budget_w * demand / total
            caps.append(min(max(share, lo), hi))
        return caps
    if strategy is DivisionStrategy.PRIORITY:
        caps = list(min_caps_w)
        remaining = budget_w - sum(caps)
        order = sorted(range(n), key=lambda i: -priorities[i])
        for i in order:
            if remaining <= 0:
                break
            want = min(demands_w[i], max_caps_w[i]) - caps[i]
            grant = min(max(want, 0.0), remaining)
            caps[i] += grant
            remaining -= grant
        return caps
    raise PolicyError(f"unknown strategy {strategy!r}")
