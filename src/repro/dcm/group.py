"""Group-level power capping.

The use case DCM was actually sold for (Section I-A): a rack or room
has one budget and many servers with varying workloads.  The group
divides its budget into per-node caps, clamped to each node's useful
range (capping below achievable idle only wastes performance, per the
paper's low-cap findings), and re-divides as demand shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..errors import PolicyError
from .division import DEFAULT_MAX_CAP_W, DEFAULT_MIN_CAP_W, divide_budget
from .manager import DataCenterManager

__all__ = ["DivisionStrategy", "NodeGroup"]


class DivisionStrategy(Enum):
    """How a group budget becomes per-node caps."""

    #: Every node gets budget / n.
    EQUAL = "equal"
    #: Nodes get caps proportional to their recent demand.
    PROPORTIONAL = "proportional"
    #: Higher-priority nodes are filled to their demand first.
    PRIORITY = "priority"


@dataclass
class _Member:
    node_id: str
    priority: int = 1
    #: Per-node clamp range for sensible caps (defaults are the paper's
    #: single-node geometry, via :mod:`repro.dcm.division`).
    min_cap_w: float = DEFAULT_MIN_CAP_W
    max_cap_w: float = DEFAULT_MAX_CAP_W


class NodeGroup:
    """A set of managed nodes sharing one power budget.

    ``default_min_cap_w`` / ``default_max_cap_w`` set the clamp range
    members get when :meth:`add_member` is not given explicit bounds;
    they default to the paper's single-node geometry
    (:data:`~repro.dcm.division.DEFAULT_MIN_CAP_W` /
    :data:`~repro.dcm.division.DEFAULT_MAX_CAP_W`) so existing
    call sites behave exactly as before.
    """

    def __init__(
        self,
        manager: DataCenterManager,
        name: str,
        budget_w: float,
        *,
        default_min_cap_w: float = DEFAULT_MIN_CAP_W,
        default_max_cap_w: float = DEFAULT_MAX_CAP_W,
    ) -> None:
        if budget_w <= 0:
            raise PolicyError("group budget must be positive")
        if not 0 < default_min_cap_w <= default_max_cap_w:
            raise PolicyError("need 0 < default_min_cap_w <= default_max_cap_w")
        self._manager = manager
        self.name = name
        self.budget_w = float(budget_w)
        self.default_min_cap_w = float(default_min_cap_w)
        self.default_max_cap_w = float(default_max_cap_w)
        self._members: Dict[str, _Member] = {}

    def add_member(
        self,
        node_id: str,
        *,
        priority: int = 1,
        min_cap_w: Optional[float] = None,
        max_cap_w: Optional[float] = None,
    ) -> None:
        """Add a managed node to the group.

        ``min_cap_w`` / ``max_cap_w`` default to the group's
        ``default_min_cap_w`` / ``default_max_cap_w``.
        """
        self._manager.node(node_id)  # validates registration
        if node_id in self._members:
            raise PolicyError(f"node {node_id!r} already in group {self.name!r}")
        if priority < 1:
            raise PolicyError("priority must be >= 1")
        if min_cap_w is None:
            min_cap_w = self.default_min_cap_w
        if max_cap_w is None:
            max_cap_w = self.default_max_cap_w
        if not 0 < min_cap_w <= max_cap_w:
            raise PolicyError("need 0 < min_cap_w <= max_cap_w")
        self._members[node_id] = _Member(
            node_id=node_id,
            priority=priority,
            min_cap_w=min_cap_w,
            max_cap_w=max_cap_w,
        )

    def member_ids(self) -> List[str]:
        """Node ids in the group."""
        return sorted(self._members)

    def _demands(self) -> Dict[str, float]:
        """Most recent power reading per member (fallback: min cap)."""
        demands = {}
        for node_id, member in self._members.items():
            entry = self._manager.node(node_id)
            demands[node_id] = (
                entry.history[-1][1] if entry.history else member.min_cap_w
            )
        return demands

    def divide(self, strategy: DivisionStrategy) -> Dict[str, float]:
        """Compute per-node caps under the group budget.

        The sum of returned caps never exceeds the budget; each cap is
        clamped to the member's ``[min_cap_w, max_cap_w]``.  With an
        infeasible budget (sum of minima above the budget) the minima
        are returned and the caller can check :meth:`feasible`.
        """
        if not self._members:
            raise PolicyError(f"group {self.name!r} has no members")
        members = [self._members[nid] for nid in sorted(self._members)]
        demands = self._demands()
        caps = divide_budget(
            self.budget_w,
            strategy,
            [demands[m.node_id] for m in members],
            [m.min_cap_w for m in members],
            [m.max_cap_w for m in members],
            [m.priority for m in members],
        )
        return {m.node_id: cap for m, cap in zip(members, caps)}

    def feasible(self) -> bool:
        """Whether the budget covers every member's minimum cap."""
        return (
            sum(m.min_cap_w for m in self._members.values()) <= self.budget_w
        )

    def apply(self, strategy: DivisionStrategy) -> Dict[str, float]:
        """Divide the budget and program every member's BMC."""
        caps = self.divide(strategy)
        for node_id, cap in caps.items():
            self._manager.apply_cap(node_id, cap)
        return caps
