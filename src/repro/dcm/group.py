"""Group-level power capping.

The use case DCM was actually sold for (Section I-A): a rack or room
has one budget and many servers with varying workloads.  The group
divides its budget into per-node caps, clamped to each node's useful
range (capping below achievable idle only wastes performance, per the
paper's low-cap findings), and re-divides as demand shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from ..errors import PolicyError
from .manager import DataCenterManager

__all__ = ["DivisionStrategy", "NodeGroup"]


class DivisionStrategy(Enum):
    """How a group budget becomes per-node caps."""

    #: Every node gets budget / n.
    EQUAL = "equal"
    #: Nodes get caps proportional to their recent demand.
    PROPORTIONAL = "proportional"
    #: Higher-priority nodes are filled to their demand first.
    PRIORITY = "priority"


@dataclass
class _Member:
    node_id: str
    priority: int = 1
    #: Per-node clamp range for sensible caps.
    min_cap_w: float = 110.0
    max_cap_w: float = 200.0


class NodeGroup:
    """A set of managed nodes sharing one power budget."""

    def __init__(
        self,
        manager: DataCenterManager,
        name: str,
        budget_w: float,
    ) -> None:
        if budget_w <= 0:
            raise PolicyError("group budget must be positive")
        self._manager = manager
        self.name = name
        self.budget_w = float(budget_w)
        self._members: Dict[str, _Member] = {}

    def add_member(
        self,
        node_id: str,
        *,
        priority: int = 1,
        min_cap_w: float = 110.0,
        max_cap_w: float = 200.0,
    ) -> None:
        """Add a managed node to the group."""
        self._manager.node(node_id)  # validates registration
        if node_id in self._members:
            raise PolicyError(f"node {node_id!r} already in group {self.name!r}")
        if priority < 1:
            raise PolicyError("priority must be >= 1")
        if not 0 < min_cap_w <= max_cap_w:
            raise PolicyError("need 0 < min_cap_w <= max_cap_w")
        self._members[node_id] = _Member(
            node_id=node_id,
            priority=priority,
            min_cap_w=min_cap_w,
            max_cap_w=max_cap_w,
        )

    def member_ids(self) -> List[str]:
        """Node ids in the group."""
        return sorted(self._members)

    def _demands(self) -> Dict[str, float]:
        """Most recent power reading per member (fallback: min cap)."""
        demands = {}
        for node_id, member in self._members.items():
            entry = self._manager.node(node_id)
            demands[node_id] = (
                entry.history[-1][1] if entry.history else member.min_cap_w
            )
        return demands

    def divide(self, strategy: DivisionStrategy) -> Dict[str, float]:
        """Compute per-node caps under the group budget.

        The sum of returned caps never exceeds the budget; each cap is
        clamped to the member's ``[min_cap_w, max_cap_w]``.  With an
        infeasible budget (sum of minima above the budget) the minima
        are returned and the caller can check :meth:`feasible`.
        """
        if not self._members:
            raise PolicyError(f"group {self.name!r} has no members")
        members = [self._members[nid] for nid in sorted(self._members)]
        if strategy is DivisionStrategy.EQUAL:
            share = self.budget_w / len(members)
            return {
                m.node_id: min(max(share, m.min_cap_w), m.max_cap_w) for m in members
            }
        if strategy is DivisionStrategy.PROPORTIONAL:
            demands = self._demands()
            total = sum(demands.values())
            caps = {}
            for m in members:
                share = self.budget_w * demands[m.node_id] / total
                caps[m.node_id] = min(max(share, m.min_cap_w), m.max_cap_w)
            return caps
        if strategy is DivisionStrategy.PRIORITY:
            demands = self._demands()
            caps = {m.node_id: m.min_cap_w for m in members}
            remaining = self.budget_w - sum(caps.values())
            for m in sorted(members, key=lambda m: -m.priority):
                if remaining <= 0:
                    break
                want = min(demands[m.node_id], m.max_cap_w) - caps[m.node_id]
                grant = min(max(want, 0.0), remaining)
                caps[m.node_id] += grant
                remaining -= grant
            return caps
        raise PolicyError(f"unknown strategy {strategy!r}")

    def feasible(self) -> bool:
        """Whether the budget covers every member's minimum cap."""
        return (
            sum(m.min_cap_w for m in self._members.values()) <= self.budget_w
        )

    def apply(self, strategy: DivisionStrategy) -> Dict[str, float]:
        """Divide the budget and program every member's BMC."""
        caps = self.divide(strategy)
        for node_id, cap in caps.items():
            self._manager.apply_cap(node_id, cap)
        return caps
