"""Intel Data Center Manager (DCM), simulated.

"Intel Data Center Manager (DCM), which runs on a management server,
manages the power consumption of the nodes of a data center.  DCM power
capping services focus on controlling resource usage to safeguard
against over utilization of constrained capacity" (Section II-A).
"To realize economy of scale, Intel DCM with Intel Node Manager is
meant to be used to manage a system comprised of a large number of
servers with varying workloads" (Section I-A).

This package provides that management plane over the simulated IPMI
transport: per-node capping policies (:mod:`.policy`), the manager
itself (:mod:`.manager`), group-level budget division (:mod:`.group`),
and threshold alerts (:mod:`.events`).
"""

from .policy import CapPolicy, StaticCapPolicy, ScheduledCapPolicy, NoCapPolicy
from .events import Alert, AlertLog, AlertSeverity
from .manager import DataCenterManager, ManagedNode
from .group import NodeGroup, DivisionStrategy
from .balancer import GroupBalancer, RebalanceRecord

__all__ = [
    "CapPolicy",
    "StaticCapPolicy",
    "ScheduledCapPolicy",
    "NoCapPolicy",
    "Alert",
    "AlertLog",
    "AlertSeverity",
    "DataCenterManager",
    "ManagedNode",
    "NodeGroup",
    "DivisionStrategy",
    "GroupBalancer",
    "RebalanceRecord",
]
