"""Physical-unit helpers used throughout the simulator.

The simulator mixes quantities from several domains (power, energy,
frequency, time, capacity).  To keep call sites unambiguous, every
public API in :mod:`repro` states its unit in the parameter name
(``cap_watts``, ``freq_hz``, ``quantum_s``) and this module provides the
conversion helpers plus light validation.

Conventions
-----------
- power:      watts (W)
- energy:     joules (J)
- frequency:  hertz (Hz); megahertz helpers provided because the paper
  reports frequencies in MHz (e.g. the 1,200 MHz DVFS floor)
- time:       seconds (s)
- capacity:   bytes (B); KiB/MiB helpers use binary (1024) multiples,
  matching cache-size conventions (32KB L1 means 32 KiB)
"""

from __future__ import annotations

import math

from .errors import UnitsError

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "MHZ",
    "GHZ",
    "kib",
    "mib",
    "gib",
    "mhz",
    "ghz",
    "hz_to_mhz",
    "hz_to_ghz",
    "ns",
    "us",
    "ms",
    "seconds_to_ns",
    "ns_to_seconds",
    "joules",
    "watt_hours_to_joules",
    "joules_to_watt_hours",
    "energy_joules",
    "require_positive",
    "require_non_negative",
    "require_fraction",
    "format_duration",
    "format_bytes",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MHZ = 1.0e6
GHZ = 1.0e9


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive and finite, else raise."""
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        raise UnitsError(f"{name} must be a positive finite number, got {value!r}")
    return v


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if non-negative and finite, else raise."""
    v = float(value)
    if not math.isfinite(v) or v < 0.0:
        raise UnitsError(f"{name} must be a non-negative finite number, got {value!r}")
    return v


def require_fraction(value: float, name: str) -> float:
    """Return ``value`` if within ``[0, 1]``, else raise."""
    v = float(value)
    if not math.isfinite(v) or not 0.0 <= v <= 1.0:
        raise UnitsError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def kib(n: float) -> int:
    """Kibibytes to bytes (32 -> 32768)."""
    return int(require_non_negative(n, "kib") * KIB)


def mib(n: float) -> int:
    """Mebibytes to bytes."""
    return int(require_non_negative(n, "mib") * MIB)


def gib(n: float) -> int:
    """Gibibytes to bytes."""
    return int(require_non_negative(n, "gib") * GIB)


def mhz(n: float) -> float:
    """Megahertz to hertz."""
    return require_non_negative(n, "mhz") * MHZ


def ghz(n: float) -> float:
    """Gigahertz to hertz."""
    return require_non_negative(n, "ghz") * GHZ


def hz_to_mhz(f_hz: float) -> float:
    """Hertz to megahertz."""
    return require_non_negative(f_hz, "f_hz") / MHZ


def hz_to_ghz(f_hz: float) -> float:
    """Hertz to gigahertz."""
    return require_non_negative(f_hz, "f_hz") / GHZ


def ns(n: float) -> float:
    """Nanoseconds to seconds."""
    return require_non_negative(n, "ns") * 1e-9


def us(n: float) -> float:
    """Microseconds to seconds."""
    return require_non_negative(n, "us") * 1e-6


def ms(n: float) -> float:
    """Milliseconds to seconds."""
    return require_non_negative(n, "ms") * 1e-3


def seconds_to_ns(t_s: float) -> float:
    """Seconds to nanoseconds."""
    return require_non_negative(t_s, "t_s") * 1e9


def ns_to_seconds(t_ns: float) -> float:
    """Nanoseconds to seconds."""
    return require_non_negative(t_ns, "t_ns") * 1e-9


def joules(power_watts: float, duration_s: float) -> float:
    """Energy (J) from constant power over a duration.

    The identity the paper leans on throughout:
    ``energy = power x execution time``.
    """
    return require_non_negative(power_watts, "power_watts") * require_non_negative(
        duration_s, "duration_s"
    )


# Backwards-compatible alias used by early callers of the API.
energy_joules = joules


def watt_hours_to_joules(wh: float) -> float:
    """Watt-hours to joules (battery capacities are quoted in Wh)."""
    return require_non_negative(wh, "wh") * 3600.0


def joules_to_watt_hours(j: float) -> float:
    """Joules to watt-hours."""
    return require_non_negative(j, "j") / 3600.0


def format_duration(t_s: float) -> str:
    """Render a duration the way the paper's tables do (``h:m:s``).

    >>> format_duration(91)
    '0:01:31'
    >>> format_duration(10139)
    '2:48:59'
    """
    total = int(round(require_non_negative(t_s, "t_s")))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def format_bytes(n_bytes: int) -> str:
    """Human-readable capacity (``32K``, ``20M``) as in cache-size labels."""
    n = int(require_non_negative(n_bytes, "n_bytes"))
    if n >= GIB and n % GIB == 0:
        return f"{n // GIB}G"
    if n >= MIB and n % MIB == 0:
        return f"{n // MIB}M"
    if n >= KIB and n % KIB == 0:
        return f"{n // KIB}K"
    return f"{n}B"
