"""Trace data types.

A :class:`TraceSlice` is the unit of work the runner pushes through the
memory hierarchy: a data-access address stream, an instruction-fetch
address stream, and the number of *instructions* the slice represents
(so per-instruction event rates can be derived from simulated counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..errors import WorkloadError

__all__ = ["AccessKind", "TraceSlice"]


def _empty_addresses() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


class AccessKind(Enum):
    """What an access is, for recorders that keep full event streams."""

    LOAD = "load"
    STORE = "store"
    IFETCH = "ifetch"


@dataclass(frozen=True)
class TraceSlice:
    """A bounded, representative slice of a workload's memory behaviour.

    Parameters
    ----------
    data_addresses:
        Byte addresses of loads/stores, in program order.
    ifetch_addresses:
        Byte addresses of instruction fetches (typically sampled at a
        lower rate than one per instruction, since sequential fetch
        within a cache line is free).
    instructions:
        How many dynamic instructions the slice represents.
    warmup_fraction:
        Leading fraction of *both* streams used only to warm the
        caches; counts from the warmup region are discarded when
        deriving steady-state rates.
    preload_addresses:
        Addresses touched once before everything else to seed the
        outer caches with the workload's resident footprint.  A short
        sampled slice cannot organically warm a multi-megabyte working
        set, so steady-state occupancy is established explicitly; the
        preload's counts are always discarded.
    """

    data_addresses: np.ndarray
    ifetch_addresses: np.ndarray
    instructions: float
    warmup_fraction: float = 0.25
    preload_addresses: np.ndarray = field(default_factory=_empty_addresses)

    def __post_init__(self) -> None:
        if self.data_addresses.ndim != 1 or self.ifetch_addresses.ndim != 1:
            raise WorkloadError("trace streams must be one-dimensional")
        if self.instructions <= 0:
            raise WorkloadError("a slice must represent a positive instruction count")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise WorkloadError("warmup fraction must be in [0, 1)")

    @property
    def measured_instructions(self) -> float:
        """Instructions attributed to the post-warmup region."""
        return self.instructions * (1.0 - self.warmup_fraction)

    def split_warmup(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (data_warm, data_meas, ifetch_warm, ifetch_meas)."""
        d_cut = int(len(self.data_addresses) * self.warmup_fraction)
        i_cut = int(len(self.ifetch_addresses) * self.warmup_fraction)
        return (
            self.data_addresses[:d_cut],
            self.data_addresses[d_cut:],
            self.ifetch_addresses[:i_cut],
            self.ifetch_addresses[i_cut:],
        )
