"""Trace sampling and stream interleaving.

Full runs of the paper's applications execute 10^11-10^12 instructions;
simulating every access is out of the question in any simulator.  The
standard technique (and ours) is representative sampling: simulate a
bounded slice, measure steady-state per-instruction event rates, and
scale to the full instruction budget.  :func:`sample_slice` extracts
contiguous windows (preserving locality, unlike random subsampling) and
:func:`interleave` merges independently generated streams in a
deterministic round-robin.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["sample_slice", "interleave"]


def sample_slice(
    addresses: np.ndarray, target_length: int, n_windows: int = 8
) -> np.ndarray:
    """Pick ``n_windows`` evenly spaced contiguous windows.

    Contiguity preserves the spatial/temporal locality that cache
    behaviour depends on; evenly spaced windows cover phase changes.
    Returns the input unchanged when it is already short enough.
    """
    if target_length <= 0:
        raise WorkloadError("target_length must be positive")
    if n_windows <= 0:
        raise WorkloadError("n_windows must be positive")
    n = len(addresses)
    if n <= target_length:
        return addresses
    window = target_length // n_windows
    if window == 0:
        raise WorkloadError("target_length too small for the window count")
    starts = np.linspace(0, n - window, n_windows).astype(np.int64)
    return np.concatenate([addresses[s : s + window] for s in starts])


def interleave(*streams: np.ndarray, weights: tuple | None = None) -> np.ndarray:
    """Deterministically merge streams in proportion to ``weights``.

    With weights ``(2, 1)`` the output takes two elements of stream 0
    for every element of stream 1, preserving each stream's internal
    order; the merge stops when any stream is exhausted pro rata.
    """
    if not streams:
        raise WorkloadError("need at least one stream")
    if weights is None:
        weights = tuple(1 for _ in streams)
    if len(weights) != len(streams):
        raise WorkloadError("one weight per stream required")
    if any(w <= 0 for w in weights):
        raise WorkloadError("weights must be positive")
    # Rounds of the merge: each round emits w_i items of stream i.
    rounds = min(len(s) // w for s, w in zip(streams, weights))
    if rounds == 0:
        # Degenerate: some stream shorter than its weight — concatenate.
        return np.concatenate([np.asarray(s, dtype=np.int64) for s in streams])
    pieces = []
    for s, w in zip(streams, weights):
        pieces.append(np.asarray(s[: rounds * w], dtype=np.int64).reshape(rounds, w))
    merged = np.concatenate(pieces, axis=1)
    return merged.ravel()
