"""Capture address traces from real (reduced-scale) algorithms.

:class:`TracedArray` wraps a NumPy array and records the byte address
of every element its indexing touches into a :class:`TraceRecorder`.
The workload implementations (:mod:`repro.workloads.sar`,
:mod:`repro.workloads.stereo`) run their actual numerical code over
traced arrays at reduced scale to *validate* that the fast parametric
generators in :mod:`repro.trace.synthetic` have the right shape — a
test asserts the captured and generated locality statistics agree.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import WorkloadError

__all__ = ["TraceRecorder", "TracedArray"]


class TraceRecorder:
    """Accumulates byte addresses of recorded accesses."""

    def __init__(self, max_addresses: int = 5_000_000) -> None:
        if max_addresses <= 0:
            raise WorkloadError("max_addresses must be positive")
        self._chunks: List[np.ndarray] = []
        self._count = 0
        self._max = max_addresses
        self._next_base = 1 << 20  # leave page zero unmapped

    def allocate_base(self, n_bytes: int) -> int:
        """Hand out a non-overlapping base address for an array."""
        base = self._next_base
        # Round the next base up to a page so arrays never share pages.
        self._next_base += (int(n_bytes) + 4095) // 4096 * 4096 + 4096
        return base

    def record(self, addresses: np.ndarray) -> None:
        """Append a batch of byte addresses (silently stops at the cap)."""
        if self._count >= self._max:
            return
        take = min(len(addresses), self._max - self._count)
        self._chunks.append(np.asarray(addresses[:take], dtype=np.int64))
        self._count += take

    @property
    def count(self) -> int:
        """Number of addresses recorded."""
        return self._count

    def addresses(self) -> np.ndarray:
        """All recorded addresses, in order."""
        if not self._chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._chunks)

    def reset(self) -> None:
        """Drop everything recorded so far (bases are not reused)."""
        self._chunks.clear()
        self._count = 0


class TracedArray:
    """A NumPy array wrapper that records element addresses on access.

    Supports the indexing forms the workload kernels use: integers,
    slices, tuples thereof, and integer arrays.  Addresses are computed
    as ``base + flat_index * itemsize`` in C order, mirroring how the
    real arrays would be laid out.
    """

    def __init__(
        self, data: np.ndarray, recorder: TraceRecorder, name: str = "array"
    ) -> None:
        self._data = np.ascontiguousarray(data)
        self._recorder = recorder
        self._base = recorder.allocate_base(self._data.nbytes)
        self.name = name

    @property
    def data(self) -> np.ndarray:
        """The underlying array (reads through it are not recorded)."""
        return self._data

    @property
    def base(self) -> int:
        """The array's simulated base address."""
        return self._base

    @property
    def shape(self) -> tuple:
        """Shape of the wrapped array."""
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the wrapped array."""
        return self._data.dtype

    def _flat_indices(self, key) -> np.ndarray:
        """Flat C-order indices selected by ``key``."""
        # Let NumPy resolve the indexing on an index grid — correct for
        # every supported key form, at the cost of materialising the
        # selection (fine at the reduced scales capture runs at).
        grid = np.arange(self._data.size, dtype=np.int64).reshape(self._data.shape)
        return np.atleast_1d(np.asarray(grid[key], dtype=np.int64)).ravel()

    def _record(self, key) -> None:
        flat = self._flat_indices(key)
        self._recorder.record(self._base + flat * self._data.itemsize)

    def __getitem__(self, key):
        self._record(key)
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        self._record(key)
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TracedArray({self.name}, shape={self._data.shape}, base=0x{self._base:X})"
