"""Parametric access-pattern generators.

Each generator returns a one-dimensional ``int64`` array of byte
addresses.  They model the loop structures of the paper's workloads:

- :func:`streaming_trace` — SIRE/RSM's "stream-like fashion" pass over
  an array "too large to fit in any one of the caches", generating
  "a sequence of compulsory misses, followed by sequences of conflict
  misses" (Section IV-B);
- :func:`windowed_random_trace` — Stereo Matching's simulated-annealing
  visits: a random pixel, then a burst of spatially local window reads;
- :func:`strided_trace` — the Hennessy-Patterson stride microbenchmark
  kernel behind Figures 3 and 4;
- :func:`loop_ifetch_trace` — instruction fetch: a hot loop of a few
  code pages with occasional excursions into a larger code footprint
  (what makes gated iTLBs blow up).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "streaming_trace",
    "strided_trace",
    "random_trace",
    "windowed_random_trace",
    "loop_ifetch_trace",
]


def _require_positive(value: int, name: str) -> int:
    if value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value}")
    return int(value)


def streaming_trace(
    footprint_bytes: int,
    n_accesses: int,
    element_bytes: int = 4,
    base: int = 0,
    start_offset: int = 0,
) -> np.ndarray:
    """Sequential sweep(s) over a large array, element by element.

    Wraps around the footprint, so a slice longer than one pass models
    the iterative re-reads of SIRE's noise-removal loops.
    """
    footprint_bytes = _require_positive(footprint_bytes, "footprint_bytes")
    n_accesses = _require_positive(n_accesses, "n_accesses")
    element_bytes = _require_positive(element_bytes, "element_bytes")
    n_elements = footprint_bytes // element_bytes
    if n_elements == 0:
        raise WorkloadError("footprint smaller than one element")
    idx = (np.arange(n_accesses, dtype=np.int64) + start_offset) % n_elements
    return base + idx * element_bytes


def strided_trace(
    array_bytes: int,
    stride_bytes: int,
    n_accesses: int,
    base: int = 0,
) -> np.ndarray:
    """The H&P kernel: walk an array at a fixed stride, wrapping.

    One iteration touches ``array_bytes / stride_bytes`` distinct
    locations; repeated wrapping is exactly the nested loop of the
    microbenchmark in the paper's Section III.
    """
    array_bytes = _require_positive(array_bytes, "array_bytes")
    stride_bytes = _require_positive(stride_bytes, "stride_bytes")
    n_accesses = _require_positive(n_accesses, "n_accesses")
    if stride_bytes > array_bytes:
        raise WorkloadError("stride larger than the array")
    n_slots = array_bytes // stride_bytes
    idx = np.arange(n_accesses, dtype=np.int64) % n_slots
    return base + idx * stride_bytes


def random_trace(
    footprint_bytes: int,
    n_accesses: int,
    rng: np.random.Generator,
    element_bytes: int = 4,
    base: int = 0,
) -> np.ndarray:
    """Uniform random element accesses within a footprint."""
    footprint_bytes = _require_positive(footprint_bytes, "footprint_bytes")
    n_accesses = _require_positive(n_accesses, "n_accesses")
    n_elements = footprint_bytes // _require_positive(element_bytes, "element_bytes")
    idx = rng.integers(0, n_elements, size=n_accesses, dtype=np.int64)
    return base + idx * element_bytes


def windowed_random_trace(
    footprint_bytes: int,
    n_accesses: int,
    rng: np.random.Generator,
    window_bytes: int = 4096,
    burst: int = 48,
    row_bytes: int = 4096,
    window_rows: int = 8,
    element_bytes: int = 4,
    base: int = 0,
) -> np.ndarray:
    """Random anchor, then a 2-D window of local accesses around it.

    Models the Monte-Carlo stereo matcher: each annealing proposal
    reads an image window (``window_rows`` rows of ``window_bytes``
    within a ``row_bytes``-pitch image), so consecutive accesses are
    local while successive proposals jump anywhere in the footprint.
    """
    footprint_bytes = _require_positive(footprint_bytes, "footprint_bytes")
    n_accesses = _require_positive(n_accesses, "n_accesses")
    burst = _require_positive(burst, "burst")
    n_bursts = (n_accesses + burst - 1) // burst
    anchors = rng.integers(0, footprint_bytes, size=n_bursts, dtype=np.int64)
    per_row = max(1, burst // window_rows)
    offsets = []
    for r in range(window_rows):
        cols = (np.arange(per_row, dtype=np.int64) * element_bytes) % max(
            window_bytes, element_bytes
        )
        offsets.append(r * row_bytes + cols)
    offset_block = np.concatenate(offsets)[:burst]
    addresses = (anchors[:, None] + offset_block[None, :]).ravel()[:n_accesses]
    return base + addresses % footprint_bytes


def loop_ifetch_trace(
    n_fetches: int,
    rng: np.random.Generator,
    hot_pages: int = 24,
    cold_pages: int = 400,
    excursion_probability: float = 0.002,
    excursion_length: int = 64,
    page_bytes: int = 4096,
    fetch_bytes: int = 16,
    chunk_bytes: int = 512,
    base: int = 1 << 40,
) -> np.ndarray:
    """Instruction-fetch addresses: hot loop + rare cold excursions.

    The hot path executes a small ``chunk_bytes`` region of code inside
    each of ``hot_pages`` pages (real call graphs use a sliver of many
    pages, not whole pages).  The chunk's offset varies per page so the
    code lines do not alias into a handful of L1I sets.  The total hot
    footprint (``hot_pages * chunk_bytes``) stays L1I-resident and fits
    a 128-entry iTLB easily — the paper's tiny baseline iTLB counts —
    but gate the iTLB to 16 entries and the hot loop itself no longer
    fits: iTLB misses explode, as Table II shows.

    With small probability the stream takes an ``excursion_length``
    trip through the ``cold_pages`` library footprint.
    """
    n_fetches = _require_positive(n_fetches, "n_fetches")
    hot_pages = _require_positive(hot_pages, "hot_pages")
    cold_pages = _require_positive(cold_pages, "cold_pages")
    chunk_bytes = _require_positive(chunk_bytes, "chunk_bytes")
    if chunk_bytes > page_bytes:
        raise WorkloadError("chunk_bytes cannot exceed page_bytes")
    fetches_per_chunk = max(1, chunk_bytes // fetch_bytes)

    def chunk_offset(page: np.ndarray) -> np.ndarray:
        # Deterministic per-page offset, 64-byte aligned, chosen so
        # consecutive pages land in different L1I sets.
        return ((page * 1664) % (page_bytes - chunk_bytes)) // 64 * 64

    pos = np.arange(n_fetches, dtype=np.int64)
    page = (pos // fetches_per_chunk) % hot_pages
    offset = chunk_offset(page) + (pos % fetches_per_chunk) * fetch_bytes
    addresses = base + page * page_bytes + offset
    # Overwrite excursion windows with trips through the cold footprint.
    n_excursions = rng.binomial(n_fetches, excursion_probability)
    for _ in range(int(n_excursions)):
        start = int(rng.integers(0, max(1, n_fetches - excursion_length)))
        cold_page = int(rng.integers(hot_pages, hot_pages + cold_pages))
        span = np.arange(excursion_length, dtype=np.int64)
        epage = cold_page + span // fetches_per_chunk
        addresses[start : start + excursion_length] = (
            base
            + epage * page_bytes
            + chunk_offset(epage)
            + (span % fetches_per_chunk) * fetch_bytes
        )
    return addresses
