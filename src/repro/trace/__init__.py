"""Memory-access traces.

Workloads talk to the simulated memory hierarchy through address
traces.  :mod:`.events` defines the trace currency, :mod:`.synthetic`
generates parametric access patterns (streaming, strided, windowed
random), :mod:`.capture` records the addresses a real reduced-scale
algorithm touches, and :mod:`.sampler` bounds and scales traces so a
sampled slice can stand in for a full-length run.
"""

from .events import AccessKind, TraceSlice
from .synthetic import (
    streaming_trace,
    strided_trace,
    random_trace,
    windowed_random_trace,
    loop_ifetch_trace,
)
from .capture import TraceRecorder, TracedArray
from .sampler import sample_slice, interleave

__all__ = [
    "AccessKind",
    "TraceSlice",
    "streaming_trace",
    "strided_trace",
    "random_trace",
    "windowed_random_trace",
    "loop_ifetch_trace",
    "TraceRecorder",
    "TracedArray",
    "sample_slice",
    "interleave",
]
