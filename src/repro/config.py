"""Platform and experiment configuration.

Everything the simulator needs to know about the modelled machine lives
in frozen dataclasses defined here.  The default factory,
:func:`sandy_bridge_config`, mirrors the experimental platform of
Section III of the paper:

- two Intel 2.7 GHz eight-core (130 W TDP) Sandy Bridge E5-2680 sockets,
- 16 P-states per core (DVFS floor 1,200 MHz; the paper's Table II shows
  the average frequency pinned at 1,200 MHz for caps <= 130 W),
- 32 KB L1 data / 32 KB L1 instruction caches, 256 KB unified L2,
  20 MB shared L3, 64 GB RAM,
- memory-hierarchy latencies inferred by the paper from its own stride
  microbenchmark (Figure 3): L1 hit 1.5 ns, L1 miss penalty 2.0 ns,
  L2 miss penalty 5.1 ns, L3 miss penalty 37.1 ns, DRAM 60 ns,
- idle node power 100-103 W, uncapped busy power 153-157 W.

The power-model constants are calibration targets, not first-principles
values; ``docs`` in DESIGN.md §5 explains how they were fitted so the
node reproduces Table I/II *shapes* (idle floor, busy draw, the DVFS
floor near 125 W, and the sub-floor escalation behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from .errors import ConfigError
from .units import GIB, KIB, MIB

__all__ = [
    "CacheGeometry",
    "TlbGeometry",
    "DramConfig",
    "PStateTableConfig",
    "CStateSpec",
    "PowerModelConfig",
    "ThermalConfig",
    "EscalationLevelSpec",
    "EscalationLadderConfig",
    "BmcConfig",
    "MeterConfig",
    "NodeConfig",
    "sandy_bridge_config",
    "PAPER_POWER_CAPS_W",
    "PAPER_IDLE_POWER_RANGE_W",
]

#: The nine caps studied in the paper (Watts), highest first.
PAPER_POWER_CAPS_W: Tuple[float, ...] = (
    160.0,
    155.0,
    150.0,
    145.0,
    140.0,
    135.0,
    130.0,
    125.0,
    120.0,
)

#: "Note that the idle power was between 100 and 103 Watts."
PAPER_IDLE_POWER_RANGE_W: Tuple[float, float] = (100.0, 103.0)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry and timing of one cache level.

    ``hit_latency_ns`` is the time for a hit in this level;
    ``miss_penalty_ns`` is the *additional* time the paper's Figure 3
    attributes to missing this level (before the next level's own time).
    """

    name: str
    capacity_bytes: int
    line_bytes: int
    ways: int
    hit_latency_ns: float
    miss_penalty_ns: float
    #: Leakage attributable to the arrays of this cache, used by way
    #: gating to compute the (small) power saved per gated way.
    leakage_w: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError(f"cache {self.name}: sizes and ways must be positive")
        if self.capacity_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigError(
                f"cache {self.name}: capacity {self.capacity_bytes} not divisible "
                f"by line*ways ({self.line_bytes}*{self.ways})"
            )
        n_sets = self.capacity_bytes // (self.line_bytes * self.ways)
        if n_sets & (n_sets - 1):
            raise ConfigError(
                f"cache {self.name}: set count {n_sets} must be a power of two"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(
                f"cache {self.name}: line size {self.line_bytes} must be a power of two"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets (capacity / (line size x associativity))."""
        return self.capacity_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class TlbGeometry:
    """Geometry and timing of a translation lookaside buffer."""

    name: str
    entries: int
    ways: int
    page_bytes: int
    #: Page-walk cost added on a TLB miss.
    miss_penalty_ns: float
    leakage_w: float = 0.0

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0 or self.page_bytes <= 0:
            raise ConfigError(f"tlb {self.name}: all sizes must be positive")
        if self.entries % self.ways != 0:
            raise ConfigError(
                f"tlb {self.name}: entries {self.entries} not divisible by ways"
            )
        n_sets = self.entries // self.ways
        if n_sets & (n_sets - 1):
            raise ConfigError(f"tlb {self.name}: set count {n_sets} must be 2^k")
        if self.page_bytes & (self.page_bytes - 1):
            raise ConfigError(f"tlb {self.name}: page size must be a power of two")

    @property
    def n_sets(self) -> int:
        """Number of sets (entries / associativity)."""
        return self.entries // self.ways


@dataclass(frozen=True)
class DramConfig:
    """Main-memory configuration."""

    capacity_bytes: int
    access_latency_ns: float
    #: Sustained bandwidth used to convert traffic into DRAM active power.
    bandwidth_gbs: float
    #: Background (refresh + standby) power of the installed DIMMs.
    background_w: float
    #: Active power per GB/s of traffic.
    active_w_per_gbs: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("DRAM capacity must be positive")
        if self.access_latency_ns <= 0 or self.bandwidth_gbs <= 0:
            raise ConfigError("DRAM latency and bandwidth must be positive")


@dataclass(frozen=True)
class PStateTableConfig:
    """Parameters from which the 16-entry P-state table is generated.

    The paper's platform exposes 16 P-states per core.  Table II reports
    average frequencies between 2,701 MHz (P0, with the +1 MHz turbo
    reading artifact) and the 1,200 MHz floor.
    """

    n_states: int = 16
    f_max_mhz: float = 2701.0
    f_min_mhz: float = 1200.0
    v_max: float = 1.20
    v_min: float = 0.85

    def __post_init__(self) -> None:
        if self.n_states < 2:
            raise ConfigError("need at least two P-states")
        if self.f_min_mhz >= self.f_max_mhz:
            raise ConfigError("f_min must be below f_max")
        if self.v_min >= self.v_max:
            raise ConfigError("v_min must be below v_max")


@dataclass(frozen=True)
class CStateSpec:
    """One ACPI C-state: residual power fraction and wake latency.

    ``power_fraction`` scales the *core-attributable* power while the
    core sits in this state (C0 = 1.0).  Deeper states shut more of the
    core down but wake more slowly — exactly the trade-off Section II
    describes.
    """

    name: str
    power_fraction: float
    wake_latency_us: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_fraction <= 1.0:
            raise ConfigError(f"C-state {self.name}: power fraction out of [0,1]")
        if self.wake_latency_us < 0:
            raise ConfigError(f"C-state {self.name}: negative wake latency")


@dataclass(frozen=True)
class PowerModelConfig:
    """Constants of the node power model (see DESIGN.md §5).

    ``P_node = platform_floor_w + sockets * leakage(T) + active terms``

    The active terms for a single busy core are calibrated so that an
    uncapped busy node draws ~153-157 W (Table I) and a node pinned at
    the 1,200 MHz DVFS floor draws ~125 W — just above the paper's two
    lowest caps, which is what forces the BMC beyond DVFS.
    """

    #: Power of everything that never turns off: fans, PSU loss, board.
    #: Together with DRAM background power and idle leakage this gives
    #: the 100-103 W idle draw the paper reports.
    platform_floor_w: float = 82.0
    #: Per-socket leakage at the reference temperature.
    socket_leakage_ref_w: float = 7.0
    #: Reference temperature for leakage calibration (deg C).
    leakage_ref_temp_c: float = 35.0
    #: Fractional leakage increase per deg C above reference.
    leakage_temp_coeff: float = 0.012
    #: Effective switched capacitance of one core (farads): dynamic
    #: power = c_eff * f * V^2 * activity.  Calibrated so P0 core
    #: dynamic power is ~35 W, giving a ~154 W busy node.
    core_ceff_f: float = 9.0e-9
    #: Frequency-independent power of running one socket's uncore
    #: (ring, L3 clocks, memory controller) when any core is in C0.
    uncore_active_w: float = 16.0
    #: Fraction of the core's dynamic power still burned while the
    #: clock-modulation (T-state-like) throttle halts issue.  The high
    #: residual is what makes sub-floor throttling save almost no power
    #: while destroying performance — the paper's central low-cap
    #: observation.
    halt_residual_fraction: float = 0.85
    #: Activity factor of a fully busy core (scales c_eff term).
    busy_activity: float = 1.0

    def __post_init__(self) -> None:
        if self.platform_floor_w <= 0 or self.core_ceff_f <= 0:
            raise ConfigError("power model constants must be positive")
        if not 0.0 <= self.halt_residual_fraction <= 1.0:
            raise ConfigError("halt_residual_fraction must lie in [0,1]")


@dataclass(frozen=True)
class ThermalConfig:
    """Lumped RC thermal model: one node-level thermal mass."""

    ambient_c: float = 25.0
    #: Thermal resistance junction-to-ambient (deg C per Watt above idle).
    r_th_c_per_w: float = 0.35
    #: Thermal time constant (seconds).
    tau_s: float = 30.0

    def __post_init__(self) -> None:
        if self.r_th_c_per_w <= 0 or self.tau_s <= 0:
            raise ConfigError("thermal constants must be positive")


@dataclass(frozen=True)
class EscalationLevelSpec:
    """One rung of the BMC's beyond-DVFS escalation ladder.

    Each rung trades a *small* power saving for a memory-hierarchy
    configuration change, reproducing the paper's inference that at the
    lowest caps "techniques that involve the configuration of the memory
    hierarchy are being employed" while providing only "small decreases
    in power consumption at the cost of high losses in execution time".
    """

    name: str
    #: Fraction of L3 ways left enabled (1.0 = all 20 ways).
    l3_way_fraction: float = 1.0
    #: Fraction of L2 ways left enabled.
    l2_way_fraction: float = 1.0
    #: Fraction of L1 ways left enabled (the paper sees essentially no
    #: L1 miss growth, so the default ladder never gates L1).
    l1_way_fraction: float = 1.0
    #: Fraction of instruction-TLB entries left enabled.
    itlb_fraction: float = 1.0
    #: Fraction of data-TLB entries left enabled.
    dtlb_fraction: float = 1.0
    #: Multiplier applied to DRAM access latency (memory gating).
    dram_latency_multiplier: float = 1.0
    #: Multiplier applied to every cache level's hit latency and miss
    #: penalty (clock-gated arrays wake on demand).
    cache_latency_multiplier: float = 1.0
    #: Power saved by this rung relative to the un-escalated floor (W).
    power_saving_w: float = 0.0

    def __post_init__(self) -> None:
        for attr in (
            "l3_way_fraction",
            "l2_way_fraction",
            "l1_way_fraction",
            "itlb_fraction",
            "dtlb_fraction",
        ):
            v = getattr(self, attr)
            if not 0.0 < v <= 1.0:
                raise ConfigError(f"escalation {self.name}: {attr} must be in (0,1]")
        if self.dram_latency_multiplier < 1.0 or self.cache_latency_multiplier < 1.0:
            raise ConfigError(
                f"escalation {self.name}: latency multipliers must be >= 1"
            )
        if self.power_saving_w < 0:
            raise ConfigError(f"escalation {self.name}: negative power saving")


@dataclass(frozen=True)
class EscalationLadderConfig:
    """The ordered ladder of sub-floor power-reduction mechanisms."""

    levels: Tuple[EscalationLevelSpec, ...]
    #: Minimum duty factor the clock-modulation (T-state-like) stage may
    #: reach once the ladder is exhausted.
    duty_min: float = 0.15
    #: Duty adjustment step per control quantum.
    duty_step: float = 0.05

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigError("escalation ladder must have at least one level")
        if not 0.0 < self.duty_min <= 1.0:
            raise ConfigError("duty_min must lie in (0,1]")
        if not 0.0 < self.duty_step <= 1.0:
            raise ConfigError("duty_step must lie in (0,1]")


@dataclass(frozen=True)
class BmcConfig:
    """Baseboard Management Controller behaviour.

    The BMC samples node power once per control quantum and, per
    Section II-A, "switches between the two states" bracketing the cap
    when the cap falls between two P-state power levels.
    """

    control_quantum_s: float = 0.05
    #: Guard band: the P-state dither targets ``cap - target_margin_w``
    #: so meter noise rarely pushes the reading over the cap.
    target_margin_w: float = 3.0
    #: Hysteresis band (W) around the cap before the controller acts.
    hysteresis_w: float = 0.75
    #: Sustained over-cap time before escalating a rung (seconds) —
    #: time-based so controller dynamics are quantum-invariant.
    escalation_patience_s: float = 0.2
    #: Sustained comfortably-under-cap time before de-escalating (s).
    deescalation_patience_s: float = 2.0
    #: Margin (W) below the cap required before de-escalating.
    deescalation_margin_w: float = 5.0
    ladder: EscalationLadderConfig = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.control_quantum_s <= 0:
            raise ConfigError("control quantum must be positive")
        if self.escalation_patience_s <= 0 or self.deescalation_patience_s <= 0:
            raise ConfigError("patience durations must be positive")
        if self.ladder is None:
            object.__setattr__(self, "ladder", default_escalation_ladder())


@dataclass(frozen=True)
class MeterConfig:
    """Watts Up!-style wall power meter."""

    sample_period_s: float = 1.0
    #: Meter resolution (the Watts Up! Pro reports 0.1 W).
    resolution_w: float = 0.1
    #: Gaussian sampling noise (1 sigma, W).
    noise_sigma_w: float = 0.35

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0 or self.resolution_w <= 0:
            raise ConfigError("meter constants must be positive")
        if self.noise_sigma_w < 0:
            raise ConfigError("meter noise must be non-negative")


@dataclass(frozen=True)
class NodeConfig:
    """Everything about the simulated node."""

    name: str
    n_sockets: int
    cores_per_socket: int
    l1d: CacheGeometry
    l1i: CacheGeometry
    l2: CacheGeometry
    l3: CacheGeometry
    itlb: TlbGeometry
    dtlb: TlbGeometry
    dram: DramConfig
    pstates: PStateTableConfig
    cstates: Tuple[CStateSpec, ...]
    power: PowerModelConfig
    thermal: ThermalConfig
    bmc: BmcConfig
    meter: MeterConfig
    #: Base cycles-per-instruction of the core on compute (non-stall) work.
    base_cpi: float = 0.85

    def __post_init__(self) -> None:
        if self.n_sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigError("socket/core counts must be positive")
        if self.base_cpi <= 0:
            raise ConfigError("base CPI must be positive")

    @property
    def n_cores(self) -> int:
        """Total cores in the node."""
        return self.n_sockets * self.cores_per_socket

    def with_overrides(self, **kwargs) -> "NodeConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def cache_levels(self) -> Dict[str, CacheGeometry]:
        """Mapping of level name to geometry, inner to outer."""
        return {"L1D": self.l1d, "L1I": self.l1i, "L2": self.l2, "L3": self.l3}


def default_escalation_ladder() -> EscalationLadderConfig:
    """The ladder used for the paper reproduction.

    Rung ordering follows the evidence in Section IV-B: L2/L3 misses and
    instruction-TLB misses blow up only at the two lowest caps, so way
    gating and iTLB gating sit *below* the first DRAM-gating rung, and
    each rung saves only a watt or two.
    """
    return EscalationLadderConfig(
        levels=(
            EscalationLevelSpec(
                name="way-gate+itlb",
                l3_way_fraction=0.5,
                l2_way_fraction=0.5,
                itlb_fraction=0.125,
                power_saving_w=1.0,
            ),
            EscalationLevelSpec(
                name="dram-lowpower",
                l3_way_fraction=0.5,
                l2_way_fraction=0.5,
                itlb_fraction=0.125,
                dram_latency_multiplier=2.0,
                power_saving_w=1.8,
            ),
            EscalationLevelSpec(
                name="tlb-deep",
                l3_way_fraction=0.5,
                l2_way_fraction=0.5,
                itlb_fraction=0.0625,
                dram_latency_multiplier=2.0,
                power_saving_w=2.0,
            ),
            EscalationLevelSpec(
                name="deep-gating",
                l3_way_fraction=0.25,
                l2_way_fraction=0.25,
                itlb_fraction=0.0625,
                dram_latency_multiplier=3.0,
                cache_latency_multiplier=1.5,
                power_saving_w=2.6,
            ),
        ),
        duty_min=0.15,
        duty_step=0.05,
    )


def sandy_bridge_config(**overrides) -> NodeConfig:
    """The paper's experimental platform (Section III).

    Two 2.7 GHz eight-core Sandy Bridge E5-2680 sockets; per core
    32 KB L1D + 32 KB L1I (8-way), 256 KB unified L2 (8-way); 20 MB
    shared L3 (20-way); 64 GB RAM; 16 P-states; latencies from Fig. 3.

    Keyword overrides replace top-level :class:`NodeConfig` fields.
    """
    cfg = NodeConfig(
        name="SDP-S2R2-SandyBridge-E5-2680",
        n_sockets=2,
        cores_per_socket=8,
        l1d=CacheGeometry(
            name="L1D",
            capacity_bytes=32 * KIB,
            line_bytes=64,
            ways=8,
            hit_latency_ns=1.5,
            miss_penalty_ns=2.0,
            leakage_w=0.2,
        ),
        l1i=CacheGeometry(
            name="L1I",
            capacity_bytes=32 * KIB,
            line_bytes=64,
            ways=8,
            hit_latency_ns=1.5,
            miss_penalty_ns=2.0,
            leakage_w=0.2,
        ),
        l2=CacheGeometry(
            name="L2",
            capacity_bytes=256 * KIB,
            line_bytes=64,
            ways=8,
            hit_latency_ns=3.5,
            miss_penalty_ns=5.1,
            leakage_w=0.4,
        ),
        l3=CacheGeometry(
            name="L3",
            capacity_bytes=20 * MIB,
            line_bytes=64,
            ways=20,
            hit_latency_ns=8.6,
            miss_penalty_ns=37.1,
            leakage_w=1.2,
        ),
        itlb=TlbGeometry(
            name="ITLB",
            entries=128,
            ways=8,
            page_bytes=4096,
            miss_penalty_ns=45.0,
            leakage_w=0.05,
        ),
        dtlb=TlbGeometry(
            name="DTLB",
            entries=64,
            ways=4,
            page_bytes=4096,
            miss_penalty_ns=45.0,
            leakage_w=0.05,
        ),
        dram=DramConfig(
            capacity_bytes=64 * GIB,
            access_latency_ns=60.0,
            bandwidth_gbs=51.2,
            background_w=6.0,
            active_w_per_gbs=3.0,
        ),
        pstates=PStateTableConfig(),
        cstates=(
            CStateSpec(name="C0", power_fraction=1.0, wake_latency_us=0.0),
            CStateSpec(name="C1", power_fraction=0.30, wake_latency_us=2.0),
            CStateSpec(name="C3", power_fraction=0.12, wake_latency_us=50.0),
            CStateSpec(name="C6", power_fraction=0.03, wake_latency_us=120.0),
        ),
        power=PowerModelConfig(),
        thermal=ThermalConfig(),
        bmc=BmcConfig(),
        meter=MeterConfig(),
    )
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg
