"""The cap-enforcement control loop.

Once per control quantum the controller:

1. reads its (noisy, smoothed) power sensor;
2. model-brackets the two P-states whose node power surrounds the
   guard-banded target (``cap - target_margin``) and computes the dither
   fraction — exactly the Section II-A mechanism ("the BMC switches
   between the two states in an attempt to honor the power cap");
3. runs the escalation state machine: sustained over-cap readings while
   pinned at the DVFS floor climb the ladder (memory-hierarchy gating),
   and once the ladder is exhausted the clock-modulation duty factor
   steps down toward its minimum; sustained comfortably-under-cap
   readings unwind in the reverse order.

When the achievable floor (floor P-state + deepest gating + minimum
duty) still exceeds the cap, the duty simply pins at its minimum and
the node *runs over the cap* — which is precisely what the paper
measures at 120 W (124.0/124.9 W average at a 120 W cap) together with
the catastrophic execution-time inflation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.node import Node
from ..arch.pstate import PState
from ..config import BmcConfig
from ..errors import CapInfeasibleError
from ..mem.reconfig import GatingState
from ..obs.logging import get_logger
from .escalation import EscalationLadder
from .sel import SelEventType, SystemEventLog
from .sensors import PowerSensor

__all__ = ["CapController", "OperatingCommand"]

_log = get_logger("bmc.controller")


@dataclass(frozen=True)
class OperatingCommand:
    """What the BMC tells the node to do for the next quantum."""

    pstate_fast: PState
    pstate_slow: PState
    #: Fraction of the quantum spent in ``pstate_fast``.
    alpha: float
    duty: float
    escalation_level: int
    gating: GatingState
    gating_saving_w: float

    @property
    def effective_freq_hz(self) -> float:
        """Dither-averaged core frequency for the quantum."""
        return (
            self.alpha * self.pstate_fast.freq_hz
            + (1.0 - self.alpha) * self.pstate_slow.freq_hz
        )


class CapController:
    """Per-node power-cap enforcement."""

    def __init__(
        self,
        node: Node,
        sensor: PowerSensor,
        config: BmcConfig | None = None,
        busy_cores: int = 1,
        sel: SystemEventLog | None = None,
    ) -> None:
        self._node = node
        self._cfg = config or node.config.bmc
        self._sensor = sensor
        self._busy_cores = max(1, int(busy_cores))
        self.sel = sel if sel is not None else SystemEventLog()
        self._time_s = 0.0
        self._at_floor_logged = False
        self._over_cap_logged = False
        self._ladder = EscalationLadder(self._cfg.ladder)
        self._cap_w: float | None = None
        self._duty = 1.0
        self._over_count = 0
        self._under_count = 0
        # Patience is configured in seconds; convert to quanta so the
        # controller's time constants do not depend on the quantum.
        q = self._cfg.control_quantum_s
        self._esc_patience = max(1, round(self._cfg.escalation_patience_s / q))
        self._deesc_patience = max(
            1, round(self._cfg.deescalation_patience_s / q)
        )

    @property
    def cap_w(self) -> float | None:
        """The enforced cap (None = uncapped)."""
        return self._cap_w

    @property
    def ladder(self) -> EscalationLadder:
        """The escalation ladder runtime."""
        return self._ladder

    @property
    def duty(self) -> float:
        """The current clock-modulation duty factor."""
        return self._duty

    def set_cap(self, cap_w: float | None, *, strict: bool = False) -> None:
        """Program (or clear) the cap.

        With ``strict=True`` a cap below the node's achievable floor
        raises :class:`~repro.errors.CapInfeasibleError` immediately;
        the default mimics the real firmware, which accepts the cap and
        simply fails to honor it (Section IV's over-cap rows).
        """
        if cap_w is None:
            if self._cap_w is not None:
                self.sel.log(self._time_s, SelEventType.CAP_CLEARED)
                _log.debug("cap_cleared", time_s=self._time_s)
            self._cap_w = None
            self._reset_actuators()
            return
        cap_w = float(cap_w)
        if strict:
            floor = self._node.power_model.floor_power_w(
                self._node.pstates.slowest,
                max(l.power_saving_w for l in self._cfg.ladder.levels),
                self._node.thermal.temperature_c,
            )
            if cap_w < floor:
                raise CapInfeasibleError(cap_w, floor)
        self._cap_w = cap_w
        self._over_count = 0
        self._under_count = 0
        self._at_floor_logged = False
        self._over_cap_logged = False
        self.sel.log(self._time_s, SelEventType.CAP_SET, f"{cap_w:.0f} W")
        _log.debug("cap_set", cap_w=cap_w, strict=strict)

    def _reset_actuators(self) -> None:
        self._duty = 1.0
        self._ladder.reset()
        self._over_count = 0
        self._under_count = 0

    def _bracket(
        self, target_w: float, activity: float, traffic_bps: float
    ) -> tuple[PState, PState, float]:
        # The memoized power table plus a fresh leakage term reproduces
        # power_of_pstate bit-for-bit while skipping its per-state
        # OperatingPoint/PowerBreakdown construction (the control loop's
        # former hot spot: two brackets x sixteen states per quantum).
        model = self._node.power_model
        table = model.power_table(
            self._node.pstates,
            duty=self._duty,
            activity=activity,
            gating_saving_w=self._ladder.power_saving_w(),
            dram_traffic_bps=traffic_bps,
            busy_cores=self._busy_cores,
        )
        powers = table.powers_w(
            model.leakage_w(self._node.thermal.temperature_c)
        )
        return self._node.pstates.dither_fraction_from_powers(powers, target_w)

    def block_state(self) -> tuple:
        """Snapshot for the block-step kernel (repro.core.blockstep).

        The kernel replays :meth:`update` in local variables over a
        stretch of quanta during which no side effect it does not model
        occurs (it breaks back to the scalar path one quantum before
        any of those).  Duty-only throttle steps *are* modelled — the
        kernel logs their SEL entries itself — so the state it evolves
        is the clock, the two patience counters, and the duty cycle,
        which :meth:`commit_block` installs.
        """
        return (
            self._time_s,
            self._over_count,
            self._under_count,
            self._at_floor_logged,
            self._over_cap_logged,
            self._duty,
            self._ladder.level,
            self._ladder.at_top,
            self._ladder.power_saving_w(),
            self._esc_patience,
            self._deesc_patience,
            self._busy_cores,
        )

    def commit_block(
        self,
        time_s: float,
        over_count: int,
        under_count: int,
        duty: float | None = None,
    ) -> None:
        """Install counter state evolved by the block-step kernel.

        ``duty`` carries any in-block duty-only throttle steps; the
        kernel already logged their SEL entries with scalar-identical
        timestamps and details.
        """
        self._time_s = time_s
        self._over_count = over_count
        self._under_count = under_count
        if duty is not None:
            self._duty = duty

    def advance_time(self, dt_s: float) -> None:
        """Advance the SEL clock without running a control quantum.

        Used by the runner's steady-state fast-forward so any later SEL
        entries (e.g. a subsequent cap change) carry wall-aligned
        timestamps even though the skipped quanta never executed.
        """
        self._time_s += float(dt_s)

    def is_quiescent(
        self,
        true_power_w: float,
        *,
        activity: float = 1.0,
        traffic_bps: float = 0.0,
        n_sigma: float = 8.0,
    ) -> bool:
        """Whether further updates at this power can change anything.

        True when, for every *filtered* sensor reading within
        ``n_sigma`` steady-state filter deviations of ``true_power_w``,
        the escalation state machine can neither move an actuator nor
        log a new SEL entry.  The controller only ever sees its sensor
        through the smoothing filter, and every actuator move further
        requires a full patience window of consecutive out-of-band
        readings, so an ``n_sigma`` of 8 makes a missed transition a
        (far) sub-1e-15-per-run event.  This is the controller-side
        precondition for the runner's closed-form steady-state
        fast-forward: once quiescent, every future quantum would
        reproduce the current command exactly.
        """
        if self._cap_w is None:
            return True
        cfg = self._cfg
        cap = self._cap_w
        band = n_sigma * self._sensor.filtered_sigma_w
        lo = true_power_w - band
        hi = true_power_w + band
        if self._sensor.has_sample:
            lo = min(lo, self._sensor.reading_w)
            hi = max(hi, self._sensor.reading_w)
        fast, slow, alpha = self._bracket(
            cap - cfg.target_margin_w, activity, traffic_bps
        )
        at_floor = slow.index == len(self._node.pstates) - 1 and (
            fast.index == slow.index or alpha <= 0.0
        )
        if at_floor and not self._at_floor_logged:
            return False
        if hi > cap + cfg.hysteresis_w:
            if not self._over_cap_logged:
                return False
            if at_floor and (
                not self._ladder.at_top or self._duty > cfg.ladder.duty_min
            ):
                return False
        if lo <= cap + cfg.hysteresis_w:
            if self._duty < 1.0 and lo < cap - cfg.hysteresis_w:
                return False
            if self._ladder.level > 0 and (
                not at_floor or lo < cap - cfg.deescalation_margin_w
            ):
                return False
        return True

    def update(
        self,
        true_power_w: float,
        *,
        activity: float = 1.0,
        traffic_bps: float = 0.0,
    ) -> OperatingCommand:
        """Run one control quantum; returns the command for the next.

        ``true_power_w`` is the node's ground-truth power over the last
        quantum; the controller only ever sees it through its noisy
        sensor.
        """
        cfg = self._cfg
        measured = self._sensor.sample(true_power_w)
        self._time_s += cfg.control_quantum_s

        if self._cap_w is None:
            fastest = self._node.pstates.fastest
            return OperatingCommand(
                pstate_fast=fastest,
                pstate_slow=fastest,
                alpha=1.0,
                duty=1.0,
                escalation_level=0,
                gating=GatingState.ungated(),
                gating_saving_w=0.0,
            )

        cap = self._cap_w
        target = cap - cfg.target_margin_w
        fast, slow, alpha = self._bracket(target, activity, traffic_bps)
        duty_before = self._duty
        level_before = self._ladder.level
        at_floor = slow.index == len(self._node.pstates) - 1 and (
            fast.index == slow.index or alpha <= 0.0
        )
        if at_floor and not self._at_floor_logged:
            self._at_floor_logged = True
            self.sel.log(
                self._time_s,
                SelEventType.PSTATE_FLOOR_REACHED,
                "DVFS exhausted at 1200 MHz",
            )
            _log.debug("pstate_floor_reached", cap_w=cap, time_s=self._time_s)

        if measured > cap + cfg.hysteresis_w:
            self._over_count += 1
            self._under_count = 0
            if not self._over_cap_logged and self._over_count >= self._esc_patience:
                self._over_cap_logged = True
                self.sel.log(
                    self._time_s,
                    SelEventType.OVER_CAP,
                    f"measured {measured:.1f} W > cap {cap:.0f} W",
                )
            if at_floor and self._over_count >= self._esc_patience:
                self._over_count = 0
                if not self._ladder.at_top:
                    self._ladder.escalate()
                    spec = self._ladder.current_spec
                    self.sel.log(
                        self._time_s,
                        SelEventType.ESCALATED,
                        f"level {self._ladder.level} ({spec.name})",
                    )
                    _log.debug(
                        "escalated",
                        level=self._ladder.level,
                        mechanism=spec.name,
                        time_s=self._time_s,
                    )
                else:
                    before = self._duty
                    self._duty = max(
                        cfg.ladder.duty_min, self._duty - cfg.ladder.duty_step
                    )
                    if self._duty < before:
                        self.sel.log(
                            self._time_s,
                            SelEventType.DUTY_THROTTLED,
                            f"duty {self._duty:.2f}",
                        )
                        if self._duty == cfg.ladder.duty_min:
                            self.sel.log(
                                self._time_s,
                                SelEventType.DUTY_PINNED_AT_MINIMUM,
                                f"duty {self._duty:.2f}",
                            )
        else:
            # Within the band or under the cap: consider relaxing.  Duty
            # steps back up when there is clear air below the cap; the
            # ladder unwinds either with the same margin or whenever the
            # P-state bracket has left the floor — DVFS headroom means
            # gating is no longer the binding mechanism.
            can_raise_duty = (
                self._duty < 1.0 and measured < cap - cfg.hysteresis_w
            )
            can_deescalate = self._ladder.level > 0 and (
                not at_floor or measured < cap - cfg.deescalation_margin_w
            )
            if can_raise_duty or can_deescalate:
                self._under_count += 1
                self._over_count = 0
                if self._under_count >= self._deesc_patience:
                    self._under_count = 0
                    if can_raise_duty:
                        self._duty = min(1.0, self._duty + cfg.ladder.duty_step)
                        self.sel.log(
                            self._time_s,
                            SelEventType.DUTY_RESTORED,
                            f"duty {self._duty:.2f}",
                        )
                        self._over_cap_logged = False
                    else:
                        self._ladder.deescalate()
                        self.sel.log(
                            self._time_s,
                            SelEventType.DEESCALATED,
                            f"level {self._ladder.level}",
                        )
            else:
                self._over_count = 0
                self._under_count = 0

        # Re-bracket after an actuator change so the command reflects
        # it.  The bracket is a pure function of (target, duty, ladder,
        # temperature), so with the actuators unchanged the first result
        # is already the answer.
        if self._duty != duty_before or self._ladder.level != level_before:
            fast, slow, alpha = self._bracket(target, activity, traffic_bps)
        return OperatingCommand(
            pstate_fast=fast,
            pstate_slow=slow,
            alpha=alpha,
            duty=self._duty,
            escalation_level=self._ladder.level,
            gating=self._ladder.gating_state(),
            gating_saving_w=self._ladder.power_saving_w(),
        )

    def reset(self) -> None:
        """Clear the cap and all actuator state."""
        self._cap_w = None
        self._reset_actuators()
        self._sensor.reset()
