"""The Baseboard Management Controller.

Section II-A: "the DCM connects to the platform's Baseboard Management
Controllers (BMC), each of which is capable of monitoring and
dynamically regulating the power consumption of its node. ... If a
power cap is currently being enforced on the platform, a BMC monitors
its node's power consumption.  When it reaches a point above the level
of the power cap, then the BMC attempts to reduce power consumption by
changing the P-state of each of its CPUs.  Since a particular CPU has
only a fixed number of P-states, if the power cap falls between the
power consumption associated with two P-states, the BMC switches
between the two states in an attempt to honor the power cap."

Below the DVFS floor the controller climbs the escalation ladder the
paper's Section IV infers: memory-hierarchy gating first, then clock
modulation — mechanisms that save little power at great performance
cost.
"""

from .sensors import PowerSensor, TemperatureSensor
from .sel import SystemEventLog, SelEntry, SelEventType
from .escalation import EscalationLadder
from .controller import CapController, OperatingCommand
from .bmc import Bmc

__all__ = [
    "PowerSensor",
    "TemperatureSensor",
    "EscalationLadder",
    "CapController",
    "OperatingCommand",
    "Bmc",
    "SystemEventLog",
    "SelEntry",
    "SelEventType",
]
