"""The BMC device: an IPMI endpoint wired to the cap controller.

A :class:`Bmc` owns a node's :class:`~repro.bmc.controller.CapController`
and answers DCMI commands arriving over the out-of-band LAN:

- *Set Power Limit* programs (but does not activate) a cap;
- *Activate Power Limit* arms or disarms enforcement;
- *Get Power Limit* reads the programmed state back;
- *Get Power Reading* reports the sensor statistics DCM polls for.

The BMC has "its own dedicated Ethernet controller" (Section III), so
it registers itself on the simulated LAN transport independent of any
host OS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.node import Node
from ..errors import IpmiError
from ..ipmi.commands import (
    ActivatePowerLimitRequest,
    CorrectionAction,
    DcmiCommand,
    GetPowerReadingResponse,
    PowerLimitResponse,
    SetPowerLimitRequest,
)
from ..ipmi.messages import CompletionCode, IpmiMessage, IpmiResponse, NetFn
from ..ipmi.transport import LanTransport
from .controller import CapController
from .sensors import PowerSensor

__all__ = ["Bmc"]


@dataclass
class _PowerStats:
    """Rolling statistics for Get Power Reading."""

    current_w: float = 0.0
    minimum_w: float = float("inf")
    maximum_w: float = 0.0
    total_wq: float = 0.0
    quanta: int = 0

    def record(self, power_w: float) -> None:
        self.current_w = power_w
        self.minimum_w = min(self.minimum_w, power_w)
        self.maximum_w = max(self.maximum_w, power_w)
        self.total_wq += power_w
        self.quanta += 1

    @property
    def average_w(self) -> float:
        return self.total_wq / self.quanta if self.quanta else 0.0


class Bmc:
    """Baseboard Management Controller for one node."""

    #: IPMB address BMCs answer on.
    ADDRESS = 0x20

    def __init__(
        self,
        node: Node,
        rng: np.random.Generator,
        *,
        lan_address: str | None = None,
        transport: LanTransport | None = None,
    ) -> None:
        self._node = node
        self.sensor = PowerSensor(rng)
        self.controller = CapController(node, self.sensor)
        self._stats = _PowerStats()
        self._programmed_limit_w: int | None = None
        self._limit_active = False
        self._correction = CorrectionAction.THROTTLE
        self._time_s = 0.0
        self.lan_address = lan_address
        if transport is not None:
            if lan_address is None:
                raise IpmiError("a LAN-attached BMC needs a lan_address")
            transport.register(lan_address, self.handle_frame)

    @property
    def node(self) -> Node:
        """The managed node."""
        return self._node

    @property
    def programmed_limit_w(self) -> int | None:
        """The cap programmed via IPMI (None if never set)."""
        return self._programmed_limit_w

    @property
    def limit_active(self) -> bool:
        """Whether enforcement is armed."""
        return self._limit_active

    def record_power(self, power_w: float, dt_s: float) -> None:
        """Feed ground-truth power into the reading statistics."""
        self._stats.record(power_w)
        self._time_s += dt_s

    # ------------------------------------------------------------------
    # IPMI dispatch
    # ------------------------------------------------------------------

    def handle_frame(self, frame: bytes) -> bytes:
        """Entry point for the LAN transport: frame in, frame out."""
        try:
            message = IpmiMessage.decode(frame)
        except IpmiError:
            # Undecodable frames get a generic error response that the
            # requester's checksum validation will still accept.
            return IpmiResponse(
                rq_addr=0,
                net_fn=int(NetFn.GROUP_EXTENSION) + 1,
                rs_addr=self.ADDRESS,
                rq_seq=0,
                cmd=0,
                completion_code=int(CompletionCode.REQUEST_DATA_INVALID),
            ).encode()
        return self.handle_message(message).encode()

    def handle_message(self, message: IpmiMessage) -> IpmiResponse:
        """Dispatch one decoded IPMI request."""
        if message.net_fn != int(NetFn.GROUP_EXTENSION):
            return IpmiResponse.for_request(
                message, completion_code=int(CompletionCode.INVALID_COMMAND)
            )
        try:
            cmd = DcmiCommand(message.cmd)
        except ValueError:
            return IpmiResponse.for_request(
                message, completion_code=int(CompletionCode.INVALID_COMMAND)
            )
        handler = {
            DcmiCommand.GET_POWER_READING: self._on_get_power_reading,
            DcmiCommand.SET_POWER_LIMIT: self._on_set_power_limit,
            DcmiCommand.GET_POWER_LIMIT: self._on_get_power_limit,
            DcmiCommand.ACTIVATE_POWER_LIMIT: self._on_activate,
        }[cmd]
        try:
            return handler(message)
        except IpmiError:
            return IpmiResponse.for_request(
                message, completion_code=int(CompletionCode.REQUEST_DATA_INVALID)
            )

    def _on_get_power_reading(self, message: IpmiMessage) -> IpmiResponse:
        s = self._stats
        reading = GetPowerReadingResponse(
            current_w=int(round(s.current_w)),
            minimum_w=int(round(s.minimum_w)) if s.quanta else 0,
            maximum_w=int(round(s.maximum_w)),
            average_w=int(round(s.average_w)),
            timestamp_s=int(self._time_s),
        )
        return IpmiResponse.for_request(message, data=reading.to_payload())

    def _on_set_power_limit(self, message: IpmiMessage) -> IpmiResponse:
        request = SetPowerLimitRequest.from_payload(message.data)
        idle_w = self._node.power_model.idle_power_w()
        if request.limit_w < idle_w * 0.5:
            # Firmware sanity limit: caps far below idle are rejected.
            return IpmiResponse.for_request(
                message,
                completion_code=int(CompletionCode.POWER_LIMIT_OUT_OF_RANGE),
            )
        self._programmed_limit_w = request.limit_w
        self._correction = request.correction_action
        if self._limit_active:
            self.controller.set_cap(float(request.limit_w))
        return IpmiResponse.for_request(message)

    def _on_get_power_limit(self, message: IpmiMessage) -> IpmiResponse:
        if self._programmed_limit_w is None:
            return IpmiResponse.for_request(
                message,
                completion_code=int(CompletionCode.POWER_LIMIT_NOT_ACTIVE),
            )
        response = PowerLimitResponse(
            limit_w=self._programmed_limit_w,
            active=self._limit_active,
            correction_action=self._correction,
        )
        return IpmiResponse.for_request(message, data=response.to_payload())

    def _on_activate(self, message: IpmiMessage) -> IpmiResponse:
        request = ActivatePowerLimitRequest.from_payload(message.data)
        if request.activate:
            if self._programmed_limit_w is None:
                return IpmiResponse.for_request(
                    message,
                    completion_code=int(CompletionCode.POWER_LIMIT_NOT_ACTIVE),
                )
            self._limit_active = True
            self.controller.set_cap(float(self._programmed_limit_w))
        else:
            self._limit_active = False
            self.controller.set_cap(None)
        return IpmiResponse.for_request(message)
