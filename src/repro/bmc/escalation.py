"""The beyond-DVFS escalation ladder.

"In the case of very low power caps that are close to a system's idle
power consumption, pure DVFS may not be sufficient to reduce power
consumption to the desired level.  In this case, DCR and other
techniques that shut off specific architectural components might be
adopted" (Section II-B).  The paper's data shows exactly this: at caps
<= 130 W the frequency is pinned at the floor while L2/L3 and iTLB
misses blow up.

:class:`EscalationLadder` is the runtime over the configured rungs: it
tracks the current level, maps it to a
:class:`~repro.mem.reconfig.GatingState`, and reports the firmware's
calibrated power saving for the level.
"""

from __future__ import annotations

from ..config import EscalationLadderConfig, EscalationLevelSpec
from ..errors import SimulationError
from ..mem.reconfig import GatingState

__all__ = ["EscalationLadder"]


class EscalationLadder:
    """Mutable position on the configured escalation ladder."""

    def __init__(self, config: EscalationLadderConfig) -> None:
        self._config = config
        self._level = 0  # 0 = no escalation; 1..n = rung index + 1

    @property
    def config(self) -> EscalationLadderConfig:
        """The rung definitions."""
        return self._config

    @property
    def level(self) -> int:
        """Current level (0 = none, ``max_level`` = deepest)."""
        return self._level

    @property
    def max_level(self) -> int:
        """Number of rungs available."""
        return len(self._config.levels)

    @property
    def at_top(self) -> bool:
        """True when every rung is engaged."""
        return self._level >= self.max_level

    @property
    def current_spec(self) -> EscalationLevelSpec | None:
        """The active rung's spec (None when un-escalated)."""
        if self._level == 0:
            return None
        return self._config.levels[self._level - 1]

    def gating_state(self) -> GatingState:
        """The memory-hierarchy gating the current level prescribes."""
        spec = self.current_spec
        if spec is None:
            return GatingState.ungated()
        return GatingState.from_level(spec)

    def power_saving_w(self) -> float:
        """Firmware-calibrated saving of the current level (Watts)."""
        spec = self.current_spec
        return 0.0 if spec is None else spec.power_saving_w

    def escalate(self) -> bool:
        """Engage the next rung; returns False when already at the top."""
        if self.at_top:
            return False
        self._level += 1
        return True

    def deescalate(self) -> bool:
        """Release the current rung; returns False when at level 0."""
        if self._level == 0:
            return False
        self._level -= 1
        return True

    def set_level(self, level: int) -> None:
        """Jump to a level directly (used by tests and resets)."""
        if not 0 <= level <= self.max_level:
            raise SimulationError(
                f"escalation level {level} out of range 0..{self.max_level}"
            )
        self._level = level

    def reset(self) -> None:
        """Back to un-escalated."""
        self._level = 0
