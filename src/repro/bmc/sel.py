"""System Event Log (SEL).

Real BMCs keep a SEL: a bounded, timestamped record of management
events that operators pull when diagnosing exactly the kind of
behaviour the paper observed ("why was the node at 1,200 MHz with its
caches half off?").  The reproduction's SEL records every actuator
transition the cap controller makes, so a run's low-cap pathology can
be reconstructed event by event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, List, Optional

from ..errors import SimulationError

__all__ = ["SelEventType", "SelEntry", "SystemEventLog"]


class SelEventType(Enum):
    """What happened."""

    CAP_SET = "cap-set"
    CAP_CLEARED = "cap-cleared"
    PSTATE_FLOOR_REACHED = "pstate-floor-reached"
    ESCALATED = "escalated"
    DEESCALATED = "deescalated"
    DUTY_THROTTLED = "duty-throttled"
    DUTY_RESTORED = "duty-restored"
    DUTY_PINNED_AT_MINIMUM = "duty-pinned-at-minimum"
    OVER_CAP = "over-cap"


@dataclass(frozen=True)
class SelEntry:
    """One SEL record."""

    record_id: int
    time_s: float
    event: SelEventType
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.record_id:04d} t={self.time_s:9.2f}s {self.event.value}: {self.detail}"


class SystemEventLog:
    """Bounded FIFO of :class:`SelEntry` records.

    Like a hardware SEL, the log has finite capacity; when full, the
    oldest records are dropped and an overflow count is kept so the
    operator knows history was lost.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise SimulationError("SEL capacity must be positive")
        self._capacity = capacity
        self._entries: Deque[SelEntry] = deque(maxlen=capacity)
        self._next_id = 1
        self._overflowed = 0

    @property
    def capacity(self) -> int:
        """Maximum records retained."""
        return self._capacity

    @property
    def overflowed(self) -> int:
        """Records dropped because the log was full."""
        return self._overflowed

    def log(self, time_s: float, event: SelEventType, detail: str = "") -> SelEntry:
        """Append a record."""
        entry = SelEntry(
            record_id=self._next_id,
            time_s=float(time_s),
            event=event,
            detail=detail,
        )
        if len(self._entries) == self._capacity:
            self._overflowed += 1
        self._entries.append(entry)
        self._next_id += 1
        return entry

    def entries(self) -> List[SelEntry]:
        """All retained records, oldest first."""
        return list(self._entries)

    def by_type(self, event: SelEventType) -> List[SelEntry]:
        """Records of one event type."""
        return [e for e in self._entries if e.event is event]

    def last(self) -> Optional[SelEntry]:
        """The most recent record (None when empty)."""
        return self._entries[-1] if self._entries else None

    def clear(self) -> None:
        """Erase the log (record ids keep counting, as real SELs do)."""
        self._entries.clear()
        self._overflowed = 0

    def __len__(self) -> int:
        return len(self._entries)
