"""BMC-attached sensors.

The BMC has its own power and thermal sensors, independent of the wall
meter the experimenters used (the Watts Up! in Section III).  Both
apply Gaussian noise from a named RNG stream so runs are reproducible;
the power sensor additionally applies a single-pole smoothing filter,
which is what real node managers expose as their "statistics sampling
period".
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..units import require_non_negative

__all__ = ["PowerSensor", "TemperatureSensor"]


class PowerSensor:
    """Noisy, smoothed node-power sensor."""

    def __init__(
        self,
        rng: np.random.Generator,
        noise_sigma_w: float = 0.3,
        smoothing: float = 0.5,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError("smoothing must be in (0, 1]")
        self._rng = rng
        self._sigma = require_non_negative(noise_sigma_w, "noise_sigma_w")
        self._alpha = smoothing
        self._filtered: float | None = None

    @property
    def reading_w(self) -> float:
        """Last filtered reading (raises before the first sample)."""
        if self._filtered is None:
            raise SimulationError("power sensor has no samples yet")
        return self._filtered

    def sample(self, true_power_w: float) -> float:
        """Take a sample of the true power; returns the filtered value."""
        noisy = true_power_w + float(self._rng.normal(0.0, self._sigma))
        if self._filtered is None:
            self._filtered = noisy
        else:
            self._filtered += self._alpha * (noisy - self._filtered)
        return self._filtered

    def reset(self) -> None:
        """Forget the filter state."""
        self._filtered = None


class TemperatureSensor:
    """Noisy node-temperature sensor."""

    def __init__(self, rng: np.random.Generator, noise_sigma_c: float = 0.5) -> None:
        self._rng = rng
        self._sigma = require_non_negative(noise_sigma_c, "noise_sigma_c")

    def sample(self, true_temperature_c: float) -> float:
        """One noisy temperature reading."""
        return true_temperature_c + float(self._rng.normal(0.0, self._sigma))
