"""BMC-attached sensors.

The BMC has its own power and thermal sensors, independent of the wall
meter the experimenters used (the Watts Up! in Section III).  Both
apply Gaussian noise from a named RNG stream so runs are reproducible;
the power sensor additionally applies a single-pole smoothing filter,
which is what real node managers expose as their "statistics sampling
period".
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..units import require_non_negative

__all__ = ["PowerSensor", "TemperatureSensor"]


class PowerSensor:
    """Noisy, smoothed node-power sensor."""

    def __init__(
        self,
        rng: np.random.Generator,
        noise_sigma_w: float = 0.3,
        smoothing: float = 0.5,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError("smoothing must be in (0, 1]")
        self._rng = rng
        self._sigma = require_non_negative(noise_sigma_w, "noise_sigma_w")
        self._alpha = smoothing
        self._filtered: float | None = None

    @property
    def reading_w(self) -> float:
        """Last filtered reading (raises before the first sample)."""
        if self._filtered is None:
            raise SimulationError("power sensor has no samples yet")
        return self._filtered

    @property
    def has_sample(self) -> bool:
        """Whether at least one sample has been taken."""
        return self._filtered is not None

    @property
    def noise_sigma_w(self) -> float:
        """The Gaussian noise sigma applied to each sample."""
        return self._sigma

    @property
    def smoothing(self) -> float:
        """The EMA smoothing factor applied to samples."""
        return self._alpha

    @property
    def filtered_sigma_w(self) -> float:
        """Steady-state standard deviation of the *filtered* reading.

        The EMA of i.i.d. Gaussian samples has variance
        ``sigma^2 * alpha / (2 - alpha)`` once the filter has settled —
        the quantity that matters for "can any plausible reading cross
        a controller threshold", since the controller never sees raw
        samples.
        """
        return self._sigma * (self._alpha / (2.0 - self._alpha)) ** 0.5

    def sample(self, true_power_w: float) -> float:
        """Take a sample of the true power; returns the filtered value."""
        noisy = true_power_w + float(self._rng.normal(0.0, self._sigma))
        if self._filtered is None:
            self._filtered = noisy
        else:
            self._filtered += self._alpha * (noisy - self._filtered)
        return self._filtered

    # ------------------------------------------------------------------
    # Block-step kernel support (see repro.core.blockstep).  A Generator
    # draws ``normal(size=n)`` from exactly the stream positions that n
    # scalar draws would consume, so the kernel can pre-draw a chunk of
    # noise, simulate ahead, and rewind to the number of samples that
    # actually committed — the stream stays bit-identical to scalar
    # per-quantum sampling.
    # ------------------------------------------------------------------

    def noise_block(self, n: int):
        """Draw ``n`` noise samples from the sensor's stream at once."""
        return self._rng.normal(0.0, self._sigma, size=n)

    def rng_state(self):
        """Snapshot of the underlying bit generator's state."""
        return self._rng.bit_generator.state

    def rewind(self, state, consumed: int) -> None:
        """Restore ``state`` and re-consume exactly ``consumed`` draws."""
        self._rng.bit_generator.state = state
        if consumed:
            self._rng.normal(0.0, self._sigma, size=consumed)

    def commit_block(self, filtered: float) -> None:
        """Install the filter value evolved by the block-step kernel."""
        self._filtered = filtered

    def reset(self) -> None:
        """Forget the filter state."""
        self._filtered = None


class TemperatureSensor:
    """Noisy node-temperature sensor."""

    def __init__(self, rng: np.random.Generator, noise_sigma_c: float = 0.5) -> None:
        self._rng = rng
        self._sigma = require_non_negative(noise_sigma_c, "noise_sigma_c")

    def sample(self, true_temperature_c: float) -> float:
        """One noisy temperature reading."""
        return true_temperature_c + float(self._rng.normal(0.0, self._sigma))
