"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything with one handler while still distinguishing the
subsystem that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "UnitsError",
    "SimulationError",
    "CapInfeasibleError",
    "IpmiError",
    "IpmiSessionError",
    "IpmiTransportError",
    "IpmiCommandError",
    "PolicyError",
    "WorkloadError",
    "CounterError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigError(ReproError):
    """A platform or experiment configuration is inconsistent."""


class UnitsError(ReproError):
    """A physical quantity was given in the wrong unit or out of range."""


class SimulationError(ReproError):
    """The discrete-time simulation reached an invalid state."""


class CapInfeasibleError(SimulationError):
    """A requested power cap lies below what any mechanism can reach.

    The BMC raises this when even the deepest escalation level cannot
    bring node power under the cap (e.g. a cap below platform idle).
    """

    def __init__(self, cap_watts: float, floor_watts: float) -> None:
        self.cap_watts = float(cap_watts)
        self.floor_watts = float(floor_watts)
        super().__init__(
            f"power cap {cap_watts:.1f} W is below the achievable floor "
            f"{floor_watts:.1f} W"
        )


class IpmiError(ReproError):
    """Base class for IPMI management-plane failures."""


class IpmiSessionError(IpmiError):
    """Session establishment or sequencing failed."""


class IpmiTransportError(IpmiError):
    """The simulated out-of-band LAN transport dropped or timed out."""


class IpmiCommandError(IpmiError):
    """A command completed with a non-zero IPMI completion code."""

    def __init__(self, completion_code: int, message: str = "") -> None:
        self.completion_code = int(completion_code)
        detail = f" ({message})" if message else ""
        super().__init__(
            f"IPMI command failed with completion code "
            f"0x{completion_code:02X}{detail}"
        )


class PolicyError(ReproError):
    """A DCM power-management policy is invalid or cannot be applied."""


class WorkloadError(ReproError):
    """A workload was misconfigured or produced inconsistent output."""


class CounterError(ReproError):
    """Misuse of the PAPI-like performance counter API."""
