"""Transport-neutral HTTP routing for the experiment service.

Both front ends — the threaded :mod:`http.server` handler and the
asyncio streams server — speak the same API, so the API lives here
exactly once.  A front end's whole job is adaptation:

1. parse bytes into a :class:`Request`;
2. call :meth:`Router.dispatch`;
3. write back the :class:`Response`, or — for the SSE endpoints —
   drive the returned :class:`StreamStart`'s session: write its
   headers, then loop ``poll()`` / wait until ``done``.

The stream sessions are deliberately *poll-style* (non-blocking
``poll`` + an efficient ``wait``): a thread blocks in
:meth:`~repro.obs.stream.Subscription.wait`, while the asyncio front
end bridges the subscription's wakeup hook onto the event loop — one
shared implementation of the replay/terminal/keepalive semantics,
two transports.

Admission control happens here too: every ``POST /jobs`` passes the
service's :class:`~repro.service.admission.AdmissionController` before
a job object is even built, and sheds answer with ``429``/``503`` plus
a ``Retry-After`` header.
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from ..core.serialize import extract_timelines
from ..errors import ConfigError, SimulationError
from ..obs.archive import ObsArchive
from ..obs.logging import get_logger
from ..obs.stream import (
    FLEET_TOPIC,
    JOB_TOPIC_PREFIX,
    TERMINAL_EVENT_KINDS,
    StreamEvent,
    Subscription,
    event_bus,
)
from ..obs.timeseries import timeline_to_dict
from .jobs import JobSpec, JobState

__all__ = [
    "Request",
    "Response",
    "StreamStart",
    "JobStreamSession",
    "FleetStreamSession",
    "Router",
    "sse_frame",
    "sse_end",
    "sse_comment",
]

_log = get_logger("service.routes")

#: Hard cap on request body size (1 MiB); a job spec is tiny.
MAX_BODY_BYTES = 1 << 20

#: How long an idle job stream waits for the terminal event to land
#: after observing a terminal job state (the scheduler flips state
#: before publishing).
_TERMINAL_GRACE_S = 0.5

#: Idle seconds between fleet-stream keepalive comments.
_KEEPALIVE_S = 5.0

#: Suggested wait between stream polls (both front ends honor it).
STREAM_POLL_S = 0.25


@dataclass
class Request:
    """One parsed HTTP request, transport-independent."""

    method: str
    #: Full request target including the query string.
    target: str
    #: Header map with lower-cased names.
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Peer identity (address, or whatever the transport knows).
    client: str = ""

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> Dict[str, List[str]]:
        """Parsed query parameters."""
        return parse_qs(urlparse(self.target).query)

    @property
    def route(self) -> Tuple[str, ...]:
        """Non-empty path segments."""
        return tuple(p for p in self.path.split("/") if p)

    def header(self, name: str) -> Optional[str]:
        """One header by case-insensitive name."""
        return self.headers.get(name.lower())

    @property
    def client_id(self) -> str:
        """Admission identity: ``X-Client-Id`` when sent, else the peer."""
        return self.header("x-client-id") or self.client or "anonymous"

    def json_body(self) -> dict:
        """The body as a JSON object; raises ConfigError on anything else."""
        if not self.body:
            raise ConfigError(
                "empty request body; expected a JSON job spec"
            )
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON: {exc}")
        if not isinstance(data, dict):
            raise ConfigError("request body must be a JSON object")
        return data


@dataclass
class Response:
    """One complete (non-streaming) HTTP response."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    #: Extra headers beyond Content-Type/Content-Length.
    headers: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def json(cls, status: int, obj, **kwargs) -> "Response":
        return cls(
            status,
            json.dumps(obj, sort_keys=True).encode() + b"\n",
            **kwargs,
        )

    @classmethod
    def text(cls, status: int, text: str, content_type: str) -> "Response":
        return cls(status, text.encode(), content_type)


@dataclass
class StreamStart:
    """Dispatch result for an SSE endpoint: drive ``session`` to done."""

    session: "JobStreamSession | FleetStreamSession"
    status: int = 200
    content_type: str = "text/event-stream"
    headers: List[Tuple[str, str]] = field(
        default_factory=lambda: [("Cache-Control", "no-cache")]
    )


# ----------------------------------------------------------------------
# SSE wire format
# ----------------------------------------------------------------------


def sse_frame(event: StreamEvent) -> bytes:
    """One event as an SSE frame (id doubles as Last-Event-ID)."""
    return (
        f"id: {event.seq}\n"
        f"event: {event.kind}\n"
        f"data: {json.dumps(event.data, sort_keys=True)}\n\n"
    ).encode()


def sse_end(state: str) -> bytes:
    """The synthetic close frame for streams with no terminal event."""
    return (
        f"event: end\ndata: {json.dumps({'state': state})}\n\n"
    ).encode()


def sse_comment(text: str) -> bytes:
    """An SSE comment (keepalive) frame."""
    return f": {text}\n\n".encode()


# ----------------------------------------------------------------------
# Stream sessions
# ----------------------------------------------------------------------


class JobStreamSession:
    """One job-stream subscriber's state machine.

    Encapsulates the full SSE contract for ``/jobs/<id>/stream``:
    ``Last-Event-ID`` replay (done at subscribe time), terminal-event
    close, the post-terminal grace window, the synthetic ``end`` for
    jobs whose events rotated out of the ring, and the shutdown
    terminal frame.  Both front ends drive it the same way::

        frames, done = session.poll()
        # write frames; if done: close; else wait and poll again
    """

    def __init__(self, service, job_id: str, last_event_id: Optional[int]):
        self._service = service
        self._job_id = job_id
        self.subscription: Subscription = event_bus().subscribe(
            JOB_TOPIC_PREFIX + job_id, last_event_id=last_event_id
        )
        self._grace_deadline: Optional[float] = None
        self._done = False

    def poll(self) -> Tuple[List[bytes], bool]:
        """Drain ready events into frames; True when the stream is over."""
        if self._done:
            return [], True
        frames: List[bytes] = []
        while True:
            event = self.subscription.get(timeout=0)
            if event is None:
                break
            self._grace_deadline = None
            frames.append(sse_frame(event))
            if event.kind in TERMINAL_EVENT_KINDS:
                self._done = True
                return frames, True
        if frames:
            return frames, False
        if self._service.stopping:
            frames.append(sse_end("shutting_down"))
            self._done = True
            return frames, True
        # Queue idle: a job that is already terminal can never publish
        # again (dedup-answered and recovered jobs may never have
        # published at all).  The scheduler flips the state before
        # publishing the terminal event, so give it one grace window
        # to land before closing with a synthetic end.
        job = self._service.scheduler.get(self._job_id)
        if job is None or job.state.is_terminal:
            now = time.monotonic()
            if self._grace_deadline is None:
                self._grace_deadline = now + _TERMINAL_GRACE_S
            elif now >= self._grace_deadline:
                state = job.state.value if job else "unknown"
                frames.append(sse_end(state))
                self._done = True
                return frames, True
        return frames, False

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        event_bus().unsubscribe(self.subscription)


class FleetStreamSession:
    """One fleet-stream subscriber: endless, with idle keepalives.

    The fleet topic has no terminal event; idle periods carry SSE
    comment keepalives so a vanished client surfaces as a write error
    instead of a leaked subscription.  Service shutdown closes the
    stream with a terminal ``end`` frame.
    """

    def __init__(self, service, last_event_id: Optional[int]):
        self._service = service
        self.subscription: Subscription = event_bus().subscribe(
            FLEET_TOPIC, last_event_id=last_event_id
        )
        self._last_activity = time.monotonic()
        self._done = False

    def poll(self) -> Tuple[List[bytes], bool]:
        """Drain ready events; keepalive after idle; end on shutdown."""
        if self._done:
            return [], True
        frames: List[bytes] = []
        while True:
            event = self.subscription.get(timeout=0)
            if event is None:
                break
            frames.append(sse_frame(event))
        now = time.monotonic()
        if frames:
            self._last_activity = now
            return frames, False
        if self._service.stopping:
            frames.append(sse_end("shutting_down"))
            self._done = True
            return frames, True
        if now - self._last_activity >= _KEEPALIVE_S:
            self._last_activity = now
            frames.append(sse_comment("keepalive"))
        return frames, False

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        event_bus().unsubscribe(self.subscription)


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------


class Router:
    """Maps requests onto the service; shared by every front end."""

    def __init__(self, service) -> None:
        self._service = service

    # -- helpers -------------------------------------------------------

    def _error(self, req: Request, status: int, message: str) -> Response:
        # Every error response carries a request id that is also
        # logged, so a client-reported failure can be matched to the
        # server-side record.
        request_id = uuid.uuid4().hex[:12]
        _log.warning(
            "request_error",
            request_id=request_id,
            method=req.method,
            path=req.path,
            code=status,
            error=message,
        )
        return Response.json(
            status, {"error": message, "request_id": request_id}
        )

    def _archive_or_none(self, req: Request) -> "ObsArchive | Response":
        archive = self._service.archive
        if archive is None:
            return self._error(
                req,
                404,
                "no archive attached; start the service with --archive "
                "to record metrics history and run records",
            )
        return archive

    @staticmethod
    def _last_event_id(req: Request) -> Optional[int]:
        """The client's resume offset: header first, then query param."""
        raw = req.header("last-event-id")
        if raw is None:
            values = req.query.get("last_event_id")
            raw = values[0] if values else None
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    # -- dispatch ------------------------------------------------------

    def dispatch(self, req: Request) -> Union[Response, StreamStart]:
        """Route one request; never raises (500 is a Response too)."""
        try:
            return self._dispatch(req)
        except Exception as exc:  # noqa: BLE001 — route-crash containment
            return self._error(
                req, 500, f"internal error: {type(exc).__name__}: {exc}"
            )

    def _dispatch(self, req: Request) -> Union[Response, StreamStart]:
        parts = req.route
        if req.method == "GET":
            return self._dispatch_get(req, parts)
        if req.method == "POST":
            if parts == ("jobs",):
                return self._post_job(req)
            return self._error(req, 404, f"no such resource: {req.path}")
        if req.method == "DELETE":
            if len(parts) == 2 and parts[0] == "jobs":
                return self._delete_job(req, parts[1])
            return self._error(req, 404, f"no such resource: {req.path}")
        return self._error(req, 405, f"method {req.method} not allowed")

    def _dispatch_get(
        self, req: Request, parts: Tuple[str, ...]
    ) -> Union[Response, StreamStart]:
        service = self._service
        if parts == ("healthz",):
            return Response.json(
                200,
                {
                    "status": (
                        "stopping" if service.stopping else "ok"
                    ),
                    "workers": service.scheduler.workers,
                    "queue_depth": service.scheduler.queue_depth(),
                    "shards": service.scheduler.effective_shards,
                    "frontend": service.frontend,
                },
            )
        if parts == ("metrics",):
            return Response.text(
                200,
                service.metrics.render(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if parts == ("jobs",):
            return Response.json(
                200,
                {"jobs": [j.to_dict() for j in service.scheduler.jobs()]},
            )
        if len(parts) == 2 and parts[0] == "jobs":
            job = service.scheduler.get(parts[1])
            if job is None:
                return self._error(req, 404, f"no such job: {parts[1]}")
            return Response.json(200, job.to_dict())
        if len(parts) == 3 and parts[0] == "jobs":
            job_id, leaf = parts[1], parts[2]
            if leaf == "result":
                return self._get_result(req, job_id)
            if leaf == "timeseries":
                return self._get_timeseries(req, job_id)
            if leaf == "stream":
                return self._get_job_stream(req, job_id)
        if parts == ("fleet", "stream"):
            return StreamStart(
                FleetStreamSession(service, self._last_event_id(req))
            )
        if parts == ("metrics", "history"):
            return self._get_metrics_history(req)
        if parts == ("runs", "compare"):
            return self._get_runs_compare(req)
        return self._error(req, 404, f"no such resource: {req.path}")

    # -- submission / cancellation -------------------------------------

    def _post_job(self, req: Request) -> Response:
        service = self._service
        if len(req.body) > MAX_BODY_BYTES:
            return self._error(req, 413, "request body too large")
        decision = service.admission.admit(req.client_id)
        if not decision.admitted:
            response = self._error(
                req,
                decision.status,
                f"submission shed: {decision.reason}",
            )
            response.headers.append(
                ("Retry-After", f"{decision.retry_after_s:g}")
            )
            return response
        try:
            data = req.json_body()
            priority = int(data.pop("priority", 0))
            spec = JobSpec.from_dict(data)
        except ConfigError as exc:
            return self._error(req, 400, str(exc))
        except (TypeError, ValueError) as exc:
            return self._error(req, 400, f"bad job spec: {exc}")
        t0 = time.perf_counter()
        job = service.scheduler.submit(spec, priority=priority)
        service.metrics.submit_seconds.observe(time.perf_counter() - t0)
        return Response.json(201, job.to_dict())

    def _delete_job(self, req: Request, job_id: str) -> Response:
        service = self._service
        job = service.scheduler.get(job_id)
        if job is None:
            return self._error(req, 404, f"no such job: {job_id}")
        if service.scheduler.cancel(job_id):
            return Response.json(
                200, service.scheduler.get(job_id).to_dict()
            )
        return self._error(
            req,
            409,
            f"job is {job.state.value}; only queued jobs can be cancelled",
        )

    # -- results -------------------------------------------------------

    def _load_result(self, req: Request, job_id: str):
        """(job, doc) or an error Response."""
        service = self._service
        job = service.scheduler.get(job_id)
        if job is None:
            return self._error(req, 404, f"no such job: {job_id}")
        if job.state is JobState.FAILED:
            return self._error(req, 410, f"job failed: {job.error}")
        if job.state is not JobState.DONE:
            return self._error(
                req,
                409,
                f"job is {job.state.value}; result not available yet",
            )
        doc = service.store.get_result_dict(job.spec_digest)
        if doc is None:
            return self._error(
                req, 500, "job is DONE but its result is missing"
            )
        return job, doc

    def _get_result(self, req: Request, job_id: str) -> Response:
        loaded = self._load_result(req, job_id)
        if isinstance(loaded, Response):
            return loaded
        job, doc = loaded
        return Response.json(
            200,
            {
                "id": job.id,
                "spec_digest": job.spec_digest,
                "deduplicated": job.deduplicated,
                "results": doc,
            },
        )

    def _get_timeseries(self, req: Request, job_id: str) -> Response:
        """The job's telemetry timelines: JSON by default, CSV on request.

        Query parameters: ``channel`` (repeatable; restricts every
        timeline to the named channels) and ``format`` (``json`` |
        ``csv``).  The JSON document carries, per workload, the
        baseline timeline plus one per cap, each with its summary.
        """
        loaded = self._load_result(req, job_id)
        if isinstance(loaded, Response):
            return loaded
        job, doc = loaded
        query = req.query
        channels = query.get("channel") or None
        fmt = (query.get("format") or ["json"])[0].lower()
        if fmt not in ("json", "csv"):
            return self._error(
                req, 400, f"unknown format {fmt!r} (json or csv)"
            )
        try:
            timelines = extract_timelines(doc, channels)
        except SimulationError as exc:
            return self._error(req, 400, str(exc))
        if not timelines:
            return self._error(
                req,
                404,
                "result carries no telemetry timelines "
                "(sweep ran with telemetry disabled)",
            )
        if fmt == "csv":
            lines = ["workload,cap,channel,t_s,dt_s,mean,min,max"]
            for timeline in timelines:
                body = timeline.to_csv(
                    channels if channels is not None else None
                )
                lines.extend(body.splitlines()[1:])
            return Response.text(
                200, "\n".join(lines) + "\n", "text/csv"
            )
        by_workload: dict = {}
        for timeline in timelines:
            entry = by_workload.setdefault(
                timeline.workload, {"baseline": None, "by_cap": {}}
            )
            payload = {
                "timeline": timeline_to_dict(timeline),
                "summary": timeline.summary(),
            }
            if timeline.cap_w is None:
                entry["baseline"] = payload
            else:
                entry["by_cap"][f"{timeline.cap_w:g}"] = payload
        return Response.json(
            200,
            {
                "id": job.id,
                "spec_digest": job.spec_digest,
                "timeseries": by_workload,
            },
        )

    # -- streams -------------------------------------------------------

    def _get_job_stream(
        self, req: Request, job_id: str
    ) -> Union[Response, StreamStart]:
        job = self._service.scheduler.get(job_id)
        if job is None:
            return self._error(req, 404, f"no such job: {job_id}")
        return StreamStart(
            JobStreamSession(
                self._service, job_id, self._last_event_id(req)
            )
        )

    # -- archive -------------------------------------------------------

    def _get_metrics_history(self, req: Request) -> Response:
        """Archived scrape snapshots: the series index, or one series.

        Without ``?series=`` the response lists every recorded series
        name; with it, the series' interval samples (optionally
        bounded by ``since`` — a UNIX timestamp — and ``limit`` — the
        newest N points).
        """
        archive = self._archive_or_none(req)
        if isinstance(archive, Response):
            return archive
        query = req.query
        series = (query.get("series") or [None])[0]
        if series is None:
            return Response.json(
                200, {"series": archive.snapshot_series()}
            )
        try:
            since_raw = (query.get("since") or [None])[0]
            since = None if since_raw is None else float(since_raw)
            limit_raw = (query.get("limit") or [None])[0]
            limit = None if limit_raw is None else int(limit_raw)
        except ValueError as exc:
            return self._error(req, 400, f"bad query parameter: {exc}")
        points = archive.metric_history(series, since=since, limit=limit)
        return Response.json(
            200,
            {
                "series": series,
                "points": [
                    {
                        "t_s": p.t_s,
                        "dt_s": p.dt_s,
                        "mean": p.mean,
                        "min": p.vmin,
                        "max": p.vmax,
                    }
                    for p in points
                ],
            },
        )

    def _get_runs_compare(self, req: Request) -> Response:
        """Per-series deltas between two archived runs (``?a=&b=``)."""
        archive = self._archive_or_none(req)
        if isinstance(archive, Response):
            return archive
        query = req.query
        a = (query.get("a") or [None])[0]
        b = (query.get("b") or [None])[0]
        if not a or not b:
            return self._error(
                req, 400, "compare needs both ?a=<run_id> and ?b=<run_id>"
            )
        try:
            return Response.json(200, archive.compare_runs(a, b))
        except SimulationError as exc:
            return self._error(req, 404, str(exc))
