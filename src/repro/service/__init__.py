"""The experiment service layer: submit / schedule / store / observe.

PR 1 made sweeps cheap; this package makes them *operable*.  Instead
of one-shot CLI invocations whose results live in ad-hoc JSON files,
a long-lived service accepts sweep jobs over HTTP, schedules them on
a worker pool (sharing one rate cache across all jobs), persists every
result durably keyed by the spec's content digest (identical
resubmissions are store hits, never re-simulated), and exposes its
health and throughput as Prometheus metrics.

- :mod:`.jobs` — the frozen :class:`JobSpec`, job lifecycle states,
  and the priority queue with retry backoff;
- :mod:`.scheduler` — the worker pool driving
  :class:`~repro.core.experiment.PowerCapExperiment`;
- :mod:`.shards` — partitioned worker processes routed by consistent
  hashing over spec digests, each owning a rate-cache partition;
- :mod:`.store` — the pluggable result store (SQLite default,
  in-memory for tests; URL-selected via :func:`open_store`);
- :mod:`.admission` — token-bucket rate limiting and bounded-queue
  backpressure in front of every submission;
- :mod:`.metrics` — dependency-free Prometheus exposition;
- :mod:`.routes` — the transport-neutral HTTP API;
- :mod:`.api` — the threaded front end + :class:`ExperimentService`
  composition root (``repro-powercap serve``);
- :mod:`.asyncapi` — the asyncio front end (``serve --frontend async``).
"""

from .admission import Admission, AdmissionController, TokenBucket
from .jobs import Job, JobQueue, JobSpec, JobState, caps_from_range
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from .scheduler import ExperimentScheduler
from .shards import ShardPool, ShardRing, effective_shard_count
from .store import (
    MemoryResultStore,
    ResultStore,
    ResultStoreBase,
    SQLiteResultStore,
    open_store,
)
from .api import ExperimentService, FRONTENDS

__all__ = [
    "Admission",
    "AdmissionController",
    "TokenBucket",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "caps_from_range",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "ExperimentScheduler",
    "ShardPool",
    "ShardRing",
    "effective_shard_count",
    "MemoryResultStore",
    "ResultStore",
    "ResultStoreBase",
    "SQLiteResultStore",
    "open_store",
    "ExperimentService",
    "FRONTENDS",
]
