"""The experiment service layer: submit / schedule / store / observe.

PR 1 made sweeps cheap; this package makes them *operable*.  Instead
of one-shot CLI invocations whose results live in ad-hoc JSON files,
a long-lived service accepts sweep jobs over HTTP, schedules them on
a worker pool (sharing one rate cache across all jobs), persists every
result durably in SQLite keyed by the spec's content digest (identical
resubmissions are store hits, never re-simulated), and exposes its
health and throughput as Prometheus metrics.

- :mod:`.jobs` — the frozen :class:`JobSpec`, job lifecycle states,
  and the priority queue with retry backoff;
- :mod:`.scheduler` — the worker pool driving
  :class:`~repro.core.experiment.PowerCapExperiment`;
- :mod:`.store` — SQLite persistence for jobs, sweep documents, and
  per-cap rows;
- :mod:`.metrics` — dependency-free Prometheus exposition;
- :mod:`.api` — the stdlib HTTP front end (``repro-powercap serve``).
"""

from .jobs import Job, JobQueue, JobSpec, JobState, caps_from_range
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from .scheduler import ExperimentScheduler
from .store import ResultStore
from .api import ExperimentService

__all__ = [
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "caps_from_range",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "ExperimentScheduler",
    "ResultStore",
    "ExperimentService",
]
