"""The experiment service: store + scheduler + a pluggable front end.

The HTTP API itself lives in :mod:`repro.service.routes` (one
:class:`~repro.service.routes.Router` shared by every transport).
This module provides:

- the **threaded front end** — stdlib :mod:`http.server`, one thread
  per connection; simple, debuggable, the historical default;
- :class:`ExperimentService` — the composition root wiring the result
  store, scheduler, admission controller, optional shard pool,
  optional archive recorder, and the selected front end
  (``frontend="thread"`` or ``"async"``; the latter is
  :class:`~repro.service.asyncapi.AsyncFrontEnd`).

Endpoints (see ``docs/SERVICE.md`` for payloads):

====================  =====================================================
``POST /jobs``        submit a sweep (JSON :class:`JobSpec` + ``priority``);
                      passes admission control (429/503 + ``Retry-After``)
``GET /jobs``         recent jobs, newest first
``GET /jobs/{id}``    one job's lifecycle record
``GET /jobs/{id}/result``  the stored sweep document once DONE
``GET /jobs/{id}/timeseries``  the sweep's telemetry timelines
``GET /jobs/{id}/stream``  live Server-Sent Events for an in-flight run
``GET /fleet/stream``  live fleet health rollup events (SSE)
``DELETE /jobs/{id}`` cancel a still-queued job
``GET /healthz``      liveness + queue depth + shard/front-end identity
``GET /metrics``      Prometheus text exposition (version 0.0.4)
``GET /metrics/history``  archived scrape snapshots for one series
``GET /runs/compare`` per-series deltas between two archived runs
====================  =====================================================
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

import os

from ..errors import ConfigError
from ..obs.archive import MetricsRecorder, ObsArchive
from ..obs.logging import get_logger
from .admission import AdmissionController
from .metrics import ServiceMetrics
from .routes import (
    MAX_BODY_BYTES,
    Request,
    Response,
    Router,
    STREAM_POLL_S,
    StreamStart,
)
from .scheduler import ExperimentScheduler
from .shards import ShardPool, effective_shard_count
from .store import open_store

__all__ = ["ExperimentService", "FRONTENDS"]

#: Selectable HTTP front ends.
FRONTENDS = ("thread", "async")

_log = get_logger("service.api")


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter: parse with http.server, answer with the Router."""

    server: "_ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.server.service.verbose:
            super().log_message(fmt, *args)

    def _handle(self) -> None:
        service = self.server.service
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._write_response(
                Response.json(413, {"error": "request body too large"})
            )
            return
        body = self.rfile.read(length) if length else b""
        request = Request(
            method=self.command,
            target=self.path,
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body,
            client=self.client_address[0],
        )
        result = service.router.dispatch(request)
        if isinstance(result, StreamStart):
            self._serve_stream(result)
        else:
            self._write_response(result)

    do_GET = _handle  # noqa: N815 — http.server dispatch names
    do_POST = _handle  # noqa: N815
    do_DELETE = _handle  # noqa: N815

    def _write_response(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _serve_stream(self, start: StreamStart) -> None:
        """Drive one SSE session on this connection's thread.

        SSE responses have no Content-Length; closing the connection
        is how HTTP/1.1 delimits the (unbounded) body.
        """
        session = start.session
        self.send_response(start.status)
        self.send_header("Content-Type", start.content_type)
        for name, value in start.headers:
            self.send_header(name, value)
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            while True:
                frames, done = session.poll()
                for frame in frames:
                    self.wfile.write(frame)
                if frames:
                    self.wfile.flush()
                if done:
                    return
                session.subscription.wait(STREAM_POLL_S)
        except (BrokenPipeError, ConnectionResetError):
            pass  # Client went away; nothing to clean up but the sub.
        finally:
            session.close()


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "ExperimentService"


class ExperimentService:
    """The long-lived service: store + scheduler + HTTP front end.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`) — the tests and the CI smoke job rely on this.
    ``shards >= 2`` moves simulation into partitioned worker processes
    (with the usual single-core fallback to in-process execution);
    ``frontend`` selects the transport.
    """

    def __init__(
        self,
        db_path: "str | os.PathLike",
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        rate_cache: "str | os.PathLike | None" = None,
        max_attempts: int = 3,
        slice_accesses: int = 320_000,
        recover: bool = True,
        verbose: bool = False,
        batch: "bool | None" = None,
        archive: "ObsArchive | str | os.PathLike | None" = None,
        archive_period_s: float = 5.0,
        frontend: str = "thread",
        shards: int = 0,
        admission_rate: float = 200.0,
        admission_burst: float = 400.0,
        max_queue_depth: int = 1024,
    ) -> None:
        if frontend not in FRONTENDS:
            raise ConfigError(
                f"unknown frontend {frontend!r}; choose from {FRONTENDS}"
            )
        self.verbose = bool(verbose)
        self.frontend = frontend
        self.store = open_store(db_path)
        self.metrics = ServiceMetrics()
        self._stopping = threading.Event()
        if archive is not None and not isinstance(archive, ObsArchive):
            archive = ObsArchive(archive)
        self.archive: Optional[ObsArchive] = archive
        # The recorder thread scrapes every panel straight into the
        # archive (no HTTP round-trip) while the service runs.
        self._recorder: Optional[MetricsRecorder] = (
            None
            if archive is None
            else MetricsRecorder(
                archive, self.metrics.sample_all, period_s=archive_period_s
            )
        )
        # Shard pool (with the single-core in-process fallback).  When
        # sharded, each shard owns its own rate-cache partition and the
        # scheduler's in-process cache stays unopened.
        n_shards = effective_shard_count(shards)
        self._shard_pool: Optional[ShardPool] = (
            ShardPool(
                n_shards,
                rate_cache=rate_cache,
                slice_accesses=slice_accesses,
                batch=batch,
            )
            if n_shards >= 2
            else None
        )
        self.scheduler = ExperimentScheduler(
            self.store,
            workers=workers,
            rate_cache=None if self._shard_pool is not None else rate_cache,
            metrics=self.metrics,
            max_attempts=max_attempts,
            slice_accesses=slice_accesses,
            batch=batch,
            archive=archive,
            shard_pool=self._shard_pool,
        )
        self.admission = AdmissionController(
            rate=admission_rate,
            burst=admission_burst,
            max_queue_depth=max_queue_depth,
            queue_depth=self.scheduler.queue_depth,
        )
        self.admission.bind_drain_rate(self.scheduler.drain_rate)
        self.metrics.bind_admission(self.admission)
        if recover:
            self.scheduler.recover()
        self.router = Router(self)
        self._httpd: Optional[_ServiceHTTPServer] = None
        self._async_frontend = None
        if frontend == "thread":
            self._httpd = _ServiceHTTPServer((host, int(port)), _Handler)
            self._httpd.service = self
        else:
            from .asyncapi import AsyncFrontEnd

            self._async_frontend = AsyncFrontEnd(self, host, int(port))
        self._serve_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stopping(self) -> bool:
        """Whether a graceful shutdown has begun (SSE streams close)."""
        return self._stopping.is_set()

    @property
    def shard_pool(self) -> Optional[ShardPool]:
        """The partitioned worker pool (None when unsharded)."""
        return self._shard_pool

    @property
    def host(self) -> str:
        """Bound interface."""
        if self._httpd is not None:
            return self._httpd.server_address[0]
        return self._async_frontend.host

    @property
    def port(self) -> int:
        """Bound port (resolved when 0 was requested)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._async_frontend.port

    @property
    def url(self) -> str:
        """Base URL of the running API."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _start_backends(self, start_workers: bool) -> None:
        if self._shard_pool is not None:
            self._shard_pool.start()
        if start_workers:
            self.scheduler.start()
        if self._recorder is not None:
            self._recorder.snapshot_once()
            self._recorder.start()

    def start(self, start_workers: bool = True) -> None:
        """Start workers and serve HTTP on a background thread.

        ``start_workers=False`` brings up the API with an idle
        scheduler (jobs queue but never run) — useful for tests that
        need to observe pre-execution states deterministically.
        """
        self._start_backends(start_workers)
        if self._async_frontend is not None:
            self._async_frontend.start()
            _log.info(
                "service_started",
                url=self.url,
                frontend=self.frontend,
                workers=self.scheduler.workers,
                shards=self.scheduler.effective_shards,
            )
            return
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-http",
                daemon=True,
            )
            self._serve_thread.start()
            _log.info(
                "service_started",
                url=self.url,
                frontend=self.frontend,
                workers=self.scheduler.workers,
                shards=self.scheduler.effective_shards,
            )

    def serve_forever(self) -> None:
        """Start workers and serve HTTP on the calling thread."""
        self._start_backends(start_workers=True)
        if self._async_frontend is not None:
            self._async_frontend.serve_forever()
        else:
            self._httpd.serve_forever()

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Graceful stop: shed, close streams, drain, flush, exit.

        Ordering matters and is part of the contract:

        1. admission starts shedding (503 ``shutting_down``) and
           :attr:`stopping` flips, so SSE sessions emit their terminal
           ``end`` frame on the next poll;
        2. the front end stops (the asyncio server wakes every stream
           immediately; threaded streams notice within one poll);
        3. the scheduler stops — with ``drain`` it finishes everything
           queued, without it queued jobs are re-recorded for restart
           recovery and only in-flight jobs are awaited — then flushes
           the rate cache (or every shard partition, via the pool);
        4. the archive recorder takes a final snapshot and stops.

        Idempotent; safe to call from a signal-handler thread.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.admission.begin_shutdown()
        if self._async_frontend is not None:
            self._async_frontend.shutdown()
        elif self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=5.0)
                self._serve_thread = None
        self.scheduler.shutdown(drain=drain, timeout=timeout)
        if self._recorder is not None:
            # Final scrape after the drain so the archived history
            # ends on the service's terminal state.
            self._recorder.stop(final_snapshot=True)
        self.store.close()
