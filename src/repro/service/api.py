"""HTTP API + metrics exposition for the experiment service.

Stdlib only (:mod:`http.server`); each request runs on its own thread
(`ThreadingHTTPServer`), with all state shared through the scheduler
and the SQLite store.  Endpoints:

====================  =====================================================
``POST /jobs``        submit a sweep (JSON :class:`JobSpec` + ``priority``)
``GET /jobs``         recent jobs, newest first
``GET /jobs/{id}``    one job's lifecycle record
``GET /jobs/{id}/result``  the stored sweep document once DONE
``GET /jobs/{id}/timeseries``  the sweep's telemetry timelines
                      (``?channel=...`` repeatable, ``?format=csv``)
``GET /jobs/{id}/stream``  live Server-Sent Events for an in-flight
                      run (telemetry samples, detections, lifecycle;
                      ``Last-Event-ID`` replays missed events)
``GET /fleet/stream``  live fleet health rollup events (SSE)
``DELETE /jobs/{id}`` cancel a still-queued job
``GET /healthz``      liveness + queue depth
``GET /metrics``      Prometheus text exposition (version 0.0.4)
``GET /metrics/history``  archived scrape snapshots for one series
                      (``?series=...&since=...&limit=...``; 404 when
                      the service runs without ``--archive``)
``GET /runs/compare`` per-series deltas between two archived runs
                      (``?a=<run_id>&b=<run_id>``)
====================  =====================================================

See ``docs/SERVICE.md`` for payloads and the metric name reference.
"""

from __future__ import annotations

import json
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

import os

from ..core.serialize import extract_timelines
from ..errors import ConfigError, SimulationError
from ..obs.archive import MetricsRecorder, ObsArchive
from ..obs.logging import get_logger
from ..obs.stream import (
    FLEET_TOPIC,
    JOB_TOPIC_PREFIX,
    TERMINAL_EVENT_KINDS,
    event_bus,
)
from ..obs.timeseries import timeline_to_dict
from .jobs import JobSpec, JobState
from .metrics import ServiceMetrics
from .scheduler import ExperimentScheduler
from .store import ResultStore

__all__ = ["ExperimentService"]

_MAX_BODY_BYTES = 1 << 20

_log = get_logger("service.api")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ExperimentService`."""

    server: "_ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.server.service.verbose:
            super().log_message(fmt, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, obj) -> None:
        self._send(
            code,
            json.dumps(obj, sort_keys=True).encode() + b"\n",
            "application/json",
        )

    def _error(self, code: int, message: str) -> None:
        # Every error response carries a request id that is also
        # logged, so a client-reported failure can be matched to the
        # server-side record.
        request_id = uuid.uuid4().hex[:12]
        _log.warning(
            "request_error",
            request_id=request_id,
            method=self.command,
            path=self.path,
            code=code,
            error=message,
        )
        self._json(code, {"error": message, "request_id": request_id})

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            self._error(400, "empty request body; expected a JSON job spec")
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON: {exc}")
            return None
        if not isinstance(data, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return data

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(p for p in path.split("/") if p)

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        service = self.server.service
        parts = self._route()
        if parts == ("healthz",):
            self._json(
                200,
                {
                    "status": "ok",
                    "workers": service.scheduler.workers,
                    "queue_depth": service.scheduler.queue_depth(),
                },
            )
        elif parts == ("metrics",):
            self._send(
                200,
                service.metrics.render().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif parts == ("jobs",):
            self._json(
                200,
                {"jobs": [j.to_dict() for j in service.scheduler.jobs()]},
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = service.scheduler.get(parts[1])
            if job is None:
                self._error(404, f"no such job: {parts[1]}")
            else:
                self._json(200, job.to_dict())
        elif len(parts) == 3 and parts[:1] == ("jobs",) and parts[2] == "result":
            self._get_result(parts[1])
        elif (
            len(parts) == 3
            and parts[:1] == ("jobs",)
            and parts[2] == "timeseries"
        ):
            self._get_timeseries(parts[1])
        elif (
            len(parts) == 3
            and parts[:1] == ("jobs",)
            and parts[2] == "stream"
        ):
            self._get_job_stream(parts[1])
        elif parts == ("fleet", "stream"):
            self._get_fleet_stream()
        elif parts == ("metrics", "history"):
            self._get_metrics_history()
        elif parts == ("runs", "compare"):
            self._get_runs_compare()
        else:
            self._error(404, f"no such resource: {self.path}")

    def _archive_or_404(self) -> Optional[ObsArchive]:
        archive = self.server.service.archive
        if archive is None:
            self._error(
                404,
                "no archive attached; start the service with --archive "
                "to record metrics history and run records",
            )
        return archive

    def _get_metrics_history(self) -> None:
        """Archived scrape snapshots: the series index, or one series.

        Without ``?series=`` the response lists every recorded series
        name; with it, the series' interval samples (optionally
        bounded by ``since`` — a UNIX timestamp — and ``limit`` — the
        newest N points).
        """
        archive = self._archive_or_404()
        if archive is None:
            return
        query = parse_qs(urlparse(self.path).query)
        series = (query.get("series") or [None])[0]
        if series is None:
            self._json(200, {"series": archive.snapshot_series()})
            return
        try:
            since_raw = (query.get("since") or [None])[0]
            since = None if since_raw is None else float(since_raw)
            limit_raw = (query.get("limit") or [None])[0]
            limit = None if limit_raw is None else int(limit_raw)
        except ValueError as exc:
            self._error(400, f"bad query parameter: {exc}")
            return
        points = archive.metric_history(series, since=since, limit=limit)
        self._json(
            200,
            {
                "series": series,
                "points": [
                    {
                        "t_s": p.t_s,
                        "dt_s": p.dt_s,
                        "mean": p.mean,
                        "min": p.vmin,
                        "max": p.vmax,
                    }
                    for p in points
                ],
            },
        )

    def _get_runs_compare(self) -> None:
        """Per-series deltas between two archived runs (``?a=&b=``)."""
        archive = self._archive_or_404()
        if archive is None:
            return
        query = parse_qs(urlparse(self.path).query)
        a = (query.get("a") or [None])[0]
        b = (query.get("b") or [None])[0]
        if not a or not b:
            self._error(400, "compare needs both ?a=<run_id> and ?b=<run_id>")
            return
        try:
            self._json(200, archive.compare_runs(a, b))
        except SimulationError as exc:
            self._error(404, str(exc))

    def _load_result(self, job_id: str):
        """The job + stored sweep doc, or None after sending an error."""
        service = self.server.service
        job = service.scheduler.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return None
        if job.state is JobState.FAILED:
            self._error(410, f"job failed: {job.error}")
            return None
        if job.state is not JobState.DONE:
            self._error(
                409, f"job is {job.state.value}; result not available yet"
            )
            return None
        doc = service.store.get_result_dict(job.spec_digest)
        if doc is None:
            self._error(500, "job is DONE but its result is missing")
            return None
        return job, doc

    def _get_result(self, job_id: str) -> None:
        loaded = self._load_result(job_id)
        if loaded is None:
            return
        job, doc = loaded
        self._json(
            200,
            {
                "id": job.id,
                "spec_digest": job.spec_digest,
                "deduplicated": job.deduplicated,
                "results": doc,
            },
        )

    def _get_timeseries(self, job_id: str) -> None:
        """The job's telemetry timelines: JSON by default, CSV on request.

        Query parameters: ``channel`` (repeatable; restricts every
        timeline to the named channels) and ``format`` (``json`` |
        ``csv``).  The JSON document carries, per workload, the
        baseline timeline plus one per cap, each with its summary.
        """
        loaded = self._load_result(job_id)
        if loaded is None:
            return
        job, doc = loaded
        query = parse_qs(urlparse(self.path).query)
        channels = query.get("channel") or None
        fmt = (query.get("format") or ["json"])[0].lower()
        if fmt not in ("json", "csv"):
            self._error(400, f"unknown format {fmt!r} (json or csv)")
            return
        try:
            timelines = extract_timelines(doc, channels)
        except SimulationError as exc:
            self._error(400, str(exc))
            return
        if not timelines:
            self._error(
                404,
                "result carries no telemetry timelines "
                "(sweep ran with telemetry disabled)",
            )
            return
        if fmt == "csv":
            lines = ["workload,cap,channel,t_s,dt_s,mean,min,max"]
            for timeline in timelines:
                body = timeline.to_csv(
                    channels if channels is not None else None
                )
                lines.extend(body.splitlines()[1:])
            self._send(
                200, ("\n".join(lines) + "\n").encode(), "text/csv"
            )
            return
        by_workload: dict = {}
        for timeline in timelines:
            entry = by_workload.setdefault(
                timeline.workload, {"baseline": None, "by_cap": {}}
            )
            payload = {
                "timeline": timeline_to_dict(timeline),
                "summary": timeline.summary(),
            }
            if timeline.cap_w is None:
                entry["baseline"] = payload
            else:
                entry["by_cap"][f"{timeline.cap_w:g}"] = payload
        self._json(
            200,
            {
                "id": job.id,
                "spec_digest": job.spec_digest,
                "timeseries": by_workload,
            },
        )

    # ------------------------------------------------------------------
    # Server-Sent Events
    # ------------------------------------------------------------------

    def _last_event_id(self) -> Optional[int]:
        """The client's resume offset: header first, then query param."""
        raw = self.headers.get("Last-Event-ID")
        if raw is None:
            query = parse_qs(urlparse(self.path).query)
            values = query.get("last_event_id")
            raw = values[0] if values else None
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    def _sse_headers(self) -> None:
        # SSE responses have no Content-Length; closing the connection
        # is how HTTP/1.1 delimits the (unbounded) body.
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

    def _sse_write(self, event) -> None:
        frame = (
            f"id: {event.seq}\n"
            f"event: {event.kind}\n"
            f"data: {json.dumps(event.data, sort_keys=True)}\n\n"
        )
        self.wfile.write(frame.encode())
        self.wfile.flush()

    def _get_job_stream(self, job_id: str) -> None:
        """Stream one job's events as SSE until its terminal event.

        Replays from ``Last-Event-ID`` (or ``?last_event_id=``) so a
        reconnecting client misses nothing still in the topic's ring;
        jobs that are already terminal when the ring has rotated past
        their events get a synthetic ``end`` event and a clean close.
        """
        service = self.server.service
        job = service.scheduler.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return
        bus = event_bus()
        sub = bus.subscribe(
            JOB_TOPIC_PREFIX + job_id, last_event_id=self._last_event_id()
        )
        try:
            self._sse_headers()
            while True:
                event = sub.get(timeout=0.25)
                if event is not None:
                    self._sse_write(event)
                    if event.kind in TERMINAL_EVENT_KINDS:
                        return
                    continue
                # Queue idle: if the job is already terminal the run
                # can never publish again (a dedup-answered or
                # recovered job may never have published at all) —
                # close with a synthetic end so clients don't hang.
                job = service.scheduler.get(job_id)
                if job is None or job.state in (
                    JobState.DONE,
                    JobState.FAILED,
                    JobState.CANCELLED,
                ):
                    # The scheduler flips the state before publishing
                    # the terminal event — give it one more beat to
                    # land before concluding it will never arrive.
                    event = sub.get(timeout=0.5)
                    if event is not None:
                        self._sse_write(event)
                        if event.kind in TERMINAL_EVENT_KINDS:
                            return
                        continue
                    state = job.state.value if job else "unknown"
                    self.wfile.write(
                        (
                            "event: end\n"
                            f"data: {json.dumps({'state': state})}\n\n"
                        ).encode()
                    )
                    self.wfile.flush()
                    return
        except (BrokenPipeError, ConnectionResetError):
            pass  # Client went away; nothing to clean up but the sub.
        finally:
            bus.unsubscribe(sub)

    def _get_fleet_stream(self) -> None:
        """Stream fleet health events as SSE until the client leaves.

        The fleet topic has no terminal event; idle periods carry SSE
        comment keepalives so a vanished client surfaces as a write
        error instead of a leaked subscription.
        """
        bus = event_bus()
        sub = bus.subscribe(FLEET_TOPIC, last_event_id=self._last_event_id())
        try:
            self._sse_headers()
            idle = 0.0
            while True:
                event = sub.get(timeout=0.25)
                if event is not None:
                    idle = 0.0
                    self._sse_write(event)
                    continue
                idle += 0.25
                if idle >= 5.0:
                    idle = 0.0
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            bus.unsubscribe(sub)

    def do_POST(self) -> None:  # noqa: N802
        service = self.server.service
        if self._route() != ("jobs",):
            self._error(404, f"no such resource: {self.path}")
            return
        data = self._read_body()
        if data is None:
            return
        try:
            priority = int(data.pop("priority", 0))
            spec = JobSpec.from_dict(data)
        except ConfigError as exc:
            self._error(400, str(exc))
            return
        except (TypeError, ValueError) as exc:
            self._error(400, f"bad job spec: {exc}")
            return
        job = service.scheduler.submit(spec, priority=priority)
        self._json(201, job.to_dict())

    def do_DELETE(self) -> None:  # noqa: N802
        service = self.server.service
        parts = self._route()
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no such resource: {self.path}")
            return
        job = service.scheduler.get(parts[1])
        if job is None:
            self._error(404, f"no such job: {parts[1]}")
            return
        if service.scheduler.cancel(parts[1]):
            self._json(200, service.scheduler.get(parts[1]).to_dict())
        else:
            self._error(
                409,
                f"job is {job.state.value}; only queued jobs can be "
                "cancelled",
            )


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "ExperimentService"


class ExperimentService:
    """The long-lived service: store + scheduler + HTTP front end.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`) — the tests and the CI smoke job rely on this.
    """

    def __init__(
        self,
        db_path: "str | os.PathLike",
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        rate_cache: "str | os.PathLike | None" = None,
        max_attempts: int = 3,
        slice_accesses: int = 320_000,
        recover: bool = True,
        verbose: bool = False,
        batch: "bool | None" = None,
        archive: "ObsArchive | str | os.PathLike | None" = None,
        archive_period_s: float = 5.0,
    ) -> None:
        self.verbose = bool(verbose)
        self.store = ResultStore(db_path)
        self.metrics = ServiceMetrics()
        if archive is not None and not isinstance(archive, ObsArchive):
            archive = ObsArchive(archive)
        self.archive: Optional[ObsArchive] = archive
        # The recorder thread scrapes every panel straight into the
        # archive (no HTTP round-trip) while the service runs.
        self._recorder: Optional[MetricsRecorder] = (
            None
            if archive is None
            else MetricsRecorder(
                archive, self.metrics.sample_all, period_s=archive_period_s
            )
        )
        self.scheduler = ExperimentScheduler(
            self.store,
            workers=workers,
            rate_cache=rate_cache,
            metrics=self.metrics,
            max_attempts=max_attempts,
            slice_accesses=slice_accesses,
            batch=batch,
            archive=archive,
        )
        if recover:
            self.scheduler.recover()
        self._httpd = _ServiceHTTPServer((host, int(port)), _Handler)
        self._httpd.service = self
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """Bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when 0 was requested)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running API."""
        return f"http://{self.host}:{self.port}"

    def start(self, start_workers: bool = True) -> None:
        """Start workers and serve HTTP on a background thread.

        ``start_workers=False`` brings up the API with an idle
        scheduler (jobs queue but never run) — useful for tests that
        need to observe pre-execution states deterministically.
        """
        if start_workers:
            self.scheduler.start()
        if self._recorder is not None:
            self._recorder.snapshot_once()
            self._recorder.start()
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-http",
                daemon=True,
            )
            self._serve_thread.start()
            _log.info(
                "service_started",
                url=self.url,
                workers=self.scheduler.workers,
            )

    def serve_forever(self) -> None:
        """Start workers and serve HTTP on the calling thread."""
        self.scheduler.start()
        if self._recorder is not None:
            self._recorder.snapshot_once()
            self._recorder.start()
        self._httpd.serve_forever()

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop HTTP, then the workers (optionally draining the queue)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        self.scheduler.shutdown(drain=drain, timeout=timeout)
        if self._recorder is not None:
            # Final scrape after the drain so the archived history
            # ends on the service's terminal state.
            self._recorder.stop(final_snapshot=True)
