"""Job model and priority queue for the experiment service.

A *job* is one sweep request: the paper's methodology (workload, cap
range, repetitions) plus execution knobs (seed, instruction-budget
scale, process fan-out).  :class:`JobSpec` is frozen and canonically
hashable — its :meth:`~JobSpec.digest` keys the persistent result
store, so two submissions that would simulate the same thing
deduplicate to one stored result.

:class:`JobQueue` is the scheduler's work source: a thread-safe
priority queue (higher ``priority`` pops first, FIFO within a
priority) with delayed re-entry for retry backoff and lazy removal of
cancelled jobs.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import math
import threading
import time
import uuid
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import PAPER_POWER_CAPS_W
from ..core.experiment import validate_caps
from ..errors import ConfigError
from ..rng import DEFAULT_SEED
from ..workloads import WORKLOAD_REGISTRY

__all__ = [
    "JobState",
    "JobSpec",
    "Job",
    "JobQueue",
    "caps_from_range",
]


class JobState(str, Enum):
    """Lifecycle: QUEUED -> RUNNING -> DONE / FAILED / CANCELLED."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def caps_from_range(
    cap_max_w: float, cap_min_w: float, step_w: float = 5.0
) -> Tuple[float, ...]:
    """The descending cap list for an inclusive [min, max] range.

    Mirrors the paper's 160 -> 120 W walk: ``caps_from_range(160, 120)``
    is exactly the nine studied caps.  Inverted ranges (min > max) and
    non-positive steps raise :class:`~repro.errors.ConfigError` instead
    of yielding an empty sweep silently.
    """
    try:
        hi, lo, step = float(cap_max_w), float(cap_min_w), float(step_w)
    except (TypeError, ValueError):
        raise ConfigError(
            f"cap range bounds must be numbers, got "
            f"({cap_max_w!r}, {cap_min_w!r}, {step_w!r})"
        )
    if not (math.isfinite(hi) and math.isfinite(lo) and math.isfinite(step)):
        raise ConfigError("cap range bounds must be finite")
    if step <= 0:
        raise ConfigError(f"cap range step must be > 0 W, got {step:g}")
    if lo > hi:
        raise ConfigError(
            f"inverted cap range: min {lo:g} W > max {hi:g} W"
        )
    caps: List[float] = []
    cap = hi
    while cap >= lo - 1e-9:
        caps.append(round(cap, 6))
        cap -= step
    return tuple(validate_caps(caps))


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines a sweep's result.

    ``digest()`` covers every field, so equal digests mean equal
    simulated output (the engine is deterministic in these inputs) —
    the property the store's dedup relies on.
    """

    workload: str = "stereo"
    caps_w: Tuple[float, ...] = tuple(PAPER_POWER_CAPS_W)
    repetitions: int = 1
    seed: int = DEFAULT_SEED
    scale: float = 0.05
    #: Process fan-out *within* the sweep (PowerCapExperiment jobs=N).
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_REGISTRY:
            raise ConfigError(
                f"unknown workload {self.workload!r}; choose from "
                f"{sorted(WORKLOAD_REGISTRY)}"
            )
        object.__setattr__(
            self, "caps_w", tuple(validate_caps(self.caps_w))
        )
        if int(self.repetitions) < 1:
            raise ConfigError("repetitions must be >= 1")
        object.__setattr__(self, "repetitions", int(self.repetitions))
        scale = float(self.scale)
        if not math.isfinite(scale) or scale <= 0:
            raise ConfigError(
                f"scale must be finite and > 0, got {self.scale!r}"
            )
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "seed", int(self.seed))
        if int(self.jobs) < 1:
            raise ConfigError("jobs (process fan-out) must be >= 1")
        object.__setattr__(self, "jobs", int(self.jobs))

    def digest(self) -> str:
        """Stable content hash; the result store's primary key."""
        payload = {
            "workload": self.workload,
            "caps_w": list(self.caps_w),
            "repetitions": self.repetitions,
            "seed": self.seed,
            "scale": self.scale,
        }
        # ``jobs`` is deliberately excluded: parallel sweeps are
        # bit-identical to serial ones, so fan-out cannot change the
        # result and must not defeat dedup.
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "caps_w": list(self.caps_w),
            "repetitions": self.repetitions,
            "seed": self.seed,
            "scale": self.scale,
            "jobs": self.jobs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Build a spec from an API payload.

        Accepts either an explicit ``caps_w`` list or the range form
        ``cap_max_w`` / ``cap_min_w`` / ``cap_step_w``; unknown keys are
        rejected so typos fail loudly instead of silently running the
        default sweep.
        """
        if not isinstance(data, dict):
            raise ConfigError(f"job spec must be an object, got {data!r}")
        range_keys = {"cap_max_w", "cap_min_w", "cap_step_w"}
        known = {f.name for f in fields(cls)} | range_keys
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown job spec fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        kwargs = {
            k: v for k, v in data.items() if k in {f.name for f in fields(cls)}
        }
        if range_keys & set(data):
            if "caps_w" in data:
                raise ConfigError(
                    "give either caps_w or a cap_max_w/cap_min_w range, "
                    "not both"
                )
            missing = {"cap_max_w", "cap_min_w"} - set(data)
            if missing:
                raise ConfigError(
                    f"cap range needs both bounds; missing {sorted(missing)}"
                )
            kwargs["caps_w"] = caps_from_range(
                data["cap_max_w"],
                data["cap_min_w"],
                data.get("cap_step_w", 5.0),
            )
        return cls(**kwargs)


@dataclass
class Job:
    """One submission's mutable lifecycle record."""

    spec: JobSpec
    id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    priority: int = 0
    state: JobState = JobState.QUEUED
    attempts: int = 0
    max_attempts: int = 3
    error: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: True when the result came from the store, not a fresh sweep.
    deduplicated: bool = False

    @property
    def spec_digest(self) -> str:
        """The spec's content hash (result-store key)."""
        return self.spec.digest()

    def to_dict(self) -> dict:
        """JSON-ready representation for the API and the store."""
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec_digest,
            "priority": self.priority,
            "state": self.state.value,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deduplicated": self.deduplicated,
        }


class JobQueue:
    """Thread-safe priority queue with delayed (backoff) re-entry.

    Higher ``priority`` pops first; within a priority, submission
    order.  Retries re-enter through ``push(job, delay_s=...)`` and
    stay invisible until their backoff elapses.  Cancellation is lazy:
    a job whose state is no longer QUEUED is dropped at pop time.
    """

    def __init__(self) -> None:
        self._ready: List[Tuple[int, int, Job]] = []  # (-priority, seq, job)
        self._delayed: List[Tuple[float, int, Job]] = []  # (ready_at, seq, job)
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False

    def push(self, job: Job, delay_s: float = 0.0) -> None:
        """Enqueue a job, optionally invisible for ``delay_s`` seconds."""
        with self._cond:
            if self._closed:
                raise ConfigError("queue is closed")
            seq = next(self._seq)
            if delay_s > 0:
                heapq.heappush(
                    self._delayed, (time.monotonic() + delay_s, seq, job)
                )
            else:
                heapq.heappush(self._ready, (-job.priority, seq, job))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next runnable job; None on timeout or when closed and empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                # Promote ripe delayed entries, drop cancelled ones.
                while self._delayed and self._delayed[0][0] <= now:
                    _, seq, job = heapq.heappop(self._delayed)
                    if job.state is JobState.QUEUED:
                        heapq.heappush(self._ready, (-job.priority, seq, job))
                while self._ready:
                    _, _, job = heapq.heappop(self._ready)
                    if job.state is JobState.QUEUED:
                        return job
                if self._closed and not self._delayed:
                    return None
                waits = []
                if self._delayed:
                    waits.append(self._delayed[0][0] - now)
                if deadline is not None:
                    if now >= deadline:
                        return None
                    waits.append(deadline - now)
                self._cond.wait(min(waits) if waits else None)

    def close(self, discard: bool = False) -> List[Job]:
        """Stop accepting work and wake every blocked :meth:`pop`.

        With ``discard`` the queue also empties itself and returns the
        jobs that were still waiting (ready or in backoff, still
        QUEUED) — the graceful-shutdown path re-records them so a
        restart recovers exactly what was abandoned.  Without it, the
        default drain semantics hold: workers keep popping until the
        ready heap is empty.
        """
        with self._cond:
            self._closed = True
            discarded: List[Job] = []
            if discard:
                discarded = [
                    job
                    for _, _, job in itertools.chain(
                        self._ready, self._delayed
                    )
                    if job.state is JobState.QUEUED
                ]
                self._ready.clear()
                self._delayed.clear()
            self._cond.notify_all()
            return discarded

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._cond:
            return self._closed

    def depth(self) -> int:
        """Live QUEUED entries (ready + in backoff)."""
        with self._cond:
            return sum(
                1
                for _, _, job in itertools.chain(self._ready, self._delayed)
                if job.state is JobState.QUEUED
            )
