"""Compatibility shim: the metrics layer moved to :mod:`repro.obs.metrics`.

The Prometheus primitives (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`, :class:`MetricsRegistry`) and
:class:`ServiceMetrics` now live in :mod:`repro.obs.metrics`, next to
the engine-level :class:`~repro.obs.metrics.EngineMetrics` panel they
are rendered with.  Existing imports from ``repro.service.metrics``
keep working unchanged.
"""

from __future__ import annotations

from ..obs.metrics import (
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    ServiceMetrics,
    engine_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ServiceMetrics",
    "EngineMetrics",
    "engine_metrics",
]
