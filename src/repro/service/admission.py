"""Admission control for the serving plane: rate limits + backpressure.

Under heavy traffic the job queue must never grow without bound and a
single hot client must never starve everyone else.  This module is the
gate every ``POST /jobs`` passes before a job object is even built:

- **per-client token buckets** — each client (the ``X-Client-Id``
  header when present, else the peer address) gets a refilling bucket;
  an empty bucket sheds the request with ``429 Too Many Requests``;
- **a bounded admission queue** — when the scheduler's queue depth has
  reached ``max_queue_depth``, further submissions shed with ``503
  Service Unavailable`` (the queue is the backpressure signal: clients
  should retry after the drain catches up);
- **drain-aware Retry-After** — every shed response carries a
  ``Retry-After`` header: bucket refill time for rate sheds, a load
  factor times the recent drain rate for queue sheds;
- **shed accounting** — sheds are counted per reason and exposed on
  ``/metrics`` as ``repro_admission_shed_total{reason=...}``, so load
  shedding is observable, not silent.

Decisions are O(1) under one lock; the controller is shared by the
threaded and asyncio front ends (the asyncio server calls it from the
event loop, so nothing here may block).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigError

__all__ = ["TokenBucket", "Admission", "AdmissionController"]

#: Shed reasons, in exposition order.
SHED_REASONS = ("rate_limit", "queue_full", "shutting_down")


class TokenBucket:
    """A refilling token bucket (``rate`` tokens/s, ``burst`` capacity).

    Not thread-safe by itself — the controller serializes access; kept
    separate so the refill arithmetic is unit-testable.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1:
            raise ConfigError(
                f"token bucket needs rate > 0 and burst >= 1, got "
                f"rate={rate!r} burst={burst!r}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = time.monotonic()

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Take one token if available; refills lazily from elapsed time."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """Wall seconds until one token will be available (0 if now)."""
        deficit = 1.0 - self.tokens
        return max(0.0, deficit / self.rate)


@dataclass(frozen=True)
class Admission:
    """One admission decision."""

    admitted: bool
    #: Why the request was shed (``rate_limit`` / ``queue_full`` /
    #: ``shutting_down``); None when admitted.
    reason: Optional[str] = None
    #: HTTP status a shedding front end should answer with.
    status: int = 0
    #: Seconds the client should wait before retrying (``Retry-After``).
    retry_after_s: float = 0.0


class AdmissionController:
    """Shared admission gate for every submission path.

    ``queue_depth`` is read through a callback so the decision always
    sees the scheduler's live depth; the per-client bucket table is
    LRU-bounded (``max_clients``) so an open service cannot be grown
    without bound by spoofed client ids.
    """

    def __init__(
        self,
        rate: float = 200.0,
        burst: float = 400.0,
        max_queue_depth: int = 1024,
        max_clients: int = 4096,
        queue_depth: Optional[Callable[[], int]] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._rate = float(rate)
        self._burst = float(burst)
        self.max_queue_depth = int(max_queue_depth)
        self._max_clients = max(1, int(max_clients))
        self._queue_depth = queue_depth or (lambda: 0)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()
        self._shutting_down = False
        self._shed: Dict[str, int] = {r: 0 for r in SHED_REASONS}
        self._admitted = 0
        # Recent drain rate (jobs/s) reported by the scheduler; feeds
        # the queue-full Retry-After estimate.  A bound callback (the
        # scheduler's live window) wins over noted values.
        self._drain_rate = 0.0
        self._drain_rate_cb: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind_queue_depth(self, callback: Callable[[], int]) -> None:
        """Attach the live queue-depth callback (scheduler start)."""
        self._queue_depth = callback

    def note_drain_rate(self, jobs_per_s: float) -> None:
        """Record the scheduler's recent drain throughput."""
        with self._lock:
            self._drain_rate = max(0.0, float(jobs_per_s))

    def bind_drain_rate(self, callback: Callable[[], float]) -> None:
        """Attach a live drain-rate callback (overrides noted values)."""
        self._drain_rate_cb = callback

    def begin_shutdown(self) -> None:
        """Shed all further submissions with 503 (graceful drain)."""
        with self._lock:
            self._shutting_down = True

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------

    def admit(self, client_id: str) -> Admission:
        """Admit or shed one submission for ``client_id``."""
        with self._lock:
            if self._shutting_down:
                self._shed["shutting_down"] += 1
                return Admission(
                    False, "shutting_down", 503, retry_after_s=5.0
                )
            depth = self._queue_depth()
            if depth >= self.max_queue_depth:
                self._shed["queue_full"] += 1
                # Estimate how long the backlog takes to drain below
                # the cap; clamp to something a client will honor.
                drain = self._drain_rate
                if self._drain_rate_cb is not None:
                    try:
                        drain = max(drain, float(self._drain_rate_cb()))
                    except Exception:  # noqa: BLE001 — estimate only
                        pass
                eta = depth / drain if drain > 0 else 1.0
                return Admission(
                    False,
                    "queue_full",
                    503,
                    retry_after_s=min(60.0, max(1.0, eta)),
                )
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(self._rate, self._burst)
                self._buckets[client_id] = bucket
                if len(self._buckets) > self._max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client_id)
            if not bucket.try_acquire():
                self._shed["rate_limit"] += 1
                return Admission(
                    False,
                    "rate_limit",
                    429,
                    retry_after_s=max(
                        0.05, round(bucket.seconds_until_token(), 3)
                    ),
                )
            self._admitted += 1
            return Admission(True)

    # ------------------------------------------------------------------
    # Introspection (feeds /metrics)
    # ------------------------------------------------------------------

    @property
    def shutting_down(self) -> bool:
        """Whether :meth:`begin_shutdown` has run."""
        return self._shutting_down

    def shed_counts(self) -> Dict[str, float]:
        """``{reason: sheds}`` since construction (all reasons present)."""
        with self._lock:
            return {k: float(v) for k, v in self._shed.items()}

    def admitted_total(self) -> int:
        """Submissions that passed admission since construction."""
        with self._lock:
            return self._admitted

    def client_count(self) -> int:
        """Distinct clients currently tracked (LRU-bounded)."""
        with self._lock:
            return len(self._buckets)
