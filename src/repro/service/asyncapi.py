"""Asyncio HTTP front end: one event loop, thousands of connections.

The threaded front end spends a thread per connection — fine for a
handful of clients, ruinous for a fleet controller holding hundreds of
SSE streams open.  This front end serves the same :class:`Router` API
on a single event loop built from stdlib :mod:`asyncio` streams:

- **HTTP/1.1 with keep-alive** — a minimal, strict parser (request
  line, headers, ``Content-Length`` bodies); pipelined clients reuse
  one connection for their whole submit burst, which is where the
  bench's sustained-throughput numbers come from;
- **native SSE** — each stream is a coroutine awaiting the
  subscription's wakeup hook (bridged onto the loop with
  ``call_soon_threadsafe``), so 100+ concurrent subscribers cost
  queue memory, not threads;
- **non-blocking dispatch** — route handlers run in the default
  executor, keeping store writes and sweep submissions off the loop;
  admission sheds never leave the handler coroutine's fast path.

The loop runs either on a dedicated thread (:meth:`start`, mirroring
the threaded front end's background mode that every test relies on) or
on the calling thread (:meth:`serve_forever`, the CLI's foreground
mode).
"""

from __future__ import annotations

import asyncio
import threading
from http.client import responses as _STATUS_PHRASES
from typing import Optional, Set

from ..obs.logging import get_logger
from .routes import (
    MAX_BODY_BYTES,
    Request,
    Response,
    Router,
    STREAM_POLL_S,
    StreamStart,
)

__all__ = ["AsyncFrontEnd"]

_log = get_logger("service.asyncapi")

#: Idle keep-alive connections are reaped after this many seconds.
_IDLE_TIMEOUT_S = 120.0

#: Hard cap on one header block (DoS containment, matches http.server).
_MAX_HEADER_LINES = 100


class AsyncFrontEnd:
    """Serve the router on an asyncio event loop (stdlib streams)."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self._service = service
        self._router: Router = service.router
        self._requested = (host, int(port))
        self._host: str = host
        self._port: int = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._bound = threading.Event()
        self._stopped = threading.Event()
        self._stop_streams: Optional[asyncio.Event] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._shutdown_requested = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        """Bound interface."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (resolved once the server is up)."""
        return self._port

    def start(self) -> None:
        """Run the loop on a background thread; returns once bound."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-async-http", daemon=True
        )
        self._thread.start()
        if not self._bound.wait(timeout=10.0):
            raise RuntimeError("async front end failed to bind in 10 s")

    def serve_forever(self) -> None:
        """Run the loop on the calling thread until :meth:`shutdown`."""
        self._run()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._stopped.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_streams = asyncio.Event()
        host, port = self._requested
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        self._bound.set()
        _log.info(
            "async_frontend_started", host=self._host, port=self._port
        )
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        # Stop accepting, wake every stream, give connections a short
        # grace to flush their terminal frames, then cancel stragglers.
        self._stop_streams.set()
        tasks = [t for t in self._conn_tasks if not t.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=2.0)
        for task in self._conn_tasks:
            if not task.done():
                task.cancel()
        _log.info("async_frontend_stopped", port=self._port)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop serving (thread-safe, idempotent)."""
        if self._shutdown_requested:
            self._stopped.wait(timeout)
            return
        self._shutdown_requested = True
        loop = self._loop
        if loop is None or not self._bound.is_set():
            return

        def _stop() -> None:
            if self._server is not None:
                # Cancels serve_forever(), unwinding _main past the
                # graceful-drain block above.
                self._server.close()
                for task in asyncio.all_tasks():
                    if task.get_coro().__qualname__.endswith(
                        "serve_forever"
                    ):
                        task.cancel()

        try:
            loop.call_soon_threadsafe(_stop)
        except RuntimeError:
            return  # Loop already gone.
        self._stopped.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — transport already gone
                pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = str(peer[0]) if isinstance(peer, tuple) else "local"
        while True:
            request = await self._read_request(reader, client)
            if request is None:
                return
            result = await asyncio.get_running_loop().run_in_executor(
                None, self._router.dispatch, request
            )
            if isinstance(result, StreamStart):
                await self._serve_stream(writer, result)
                return  # SSE responses are connection-delimited.
            keep_alive = (
                request.header("connection") or "keep-alive"
            ).lower() != "close"
            self._write_response(writer, result, keep_alive)
            await writer.drain()
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, client: str
    ) -> Optional[Request]:
        """Parse one request; None for EOF / timeout / garbage."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=_IDLE_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            return None
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            return None
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            return None
        if length < 0 or length > MAX_BODY_BYTES * 2:
            return None
        body = await reader.readexactly(length) if length else b""
        return Request(
            method=method.upper(),
            target=target,
            headers=headers,
            body=body,
            client=client,
        )

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool,
    ) -> None:
        phrase = _STATUS_PHRASES.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {phrase}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode() + response.body
        )

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------

    async def _serve_stream(
        self, writer: asyncio.StreamWriter, start: StreamStart
    ) -> None:
        """Drive one stream session natively on the loop.

        The subscription's wakeup hook posts to an :class:`asyncio.Event`
        via ``call_soon_threadsafe``, so delivery latency is one loop
        turn, and an idle stream costs nothing until an event (or the
        shutdown signal) arrives.
        """
        session = start.session
        phrase = _STATUS_PHRASES.get(start.status, "OK")
        head = [f"HTTP/1.1 {start.status} {phrase}"]
        head.append(f"Content-Type: {start.content_type}")
        head.extend(f"{name}: {value}" for name, value in start.headers)
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        stop = self._stop_streams

        def _wakeup() -> None:
            loop.call_soon_threadsafe(wake.set)

        session.subscription.set_wakeup(_wakeup)
        try:
            while True:
                frames, done = session.poll()
                for frame in frames:
                    writer.write(frame)
                if frames:
                    await writer.drain()
                if done:
                    return
                wake.clear()
                waiters = [asyncio.ensure_future(wake.wait())]
                if stop is not None:
                    waiters.append(asyncio.ensure_future(stop.wait()))
                _, pending = await asyncio.wait(
                    waiters,
                    timeout=STREAM_POLL_S,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for waiter in pending:
                    waiter.cancel()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            session.close()
