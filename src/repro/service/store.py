"""Persistent job and result store backed by stdlib SQLite.

Three tables:

- ``jobs`` — every submission's lifecycle record (spec JSON, state,
  attempts, timestamps), so a restarted service can recover queued
  work and answer status queries for past jobs;
- ``results`` — one row per distinct :meth:`JobSpec.digest
  <repro.service.jobs.JobSpec.digest>`: the full sweep document
  (``{workload name: experiment_to_dict(...)}``).  Because the digest
  covers everything the deterministic engine depends on, resubmitting
  an identical spec is answered from this table without re-simulation;
- ``result_rows`` — the same sweeps exploded into per-(workload, cap)
  rows for cheap tabular queries, keyed by the spec digest and the
  paper's cap label (``baseline``, ``160`` ... ``120``).

Round-trips reuse :mod:`repro.core.serialize` verbatim — the stored
JSON is the exact on-disk format ``save_experiment`` writes, so
results loaded from the store compare equal (dataclass equality, PAPI
counter dicts included) to the live objects.

Connections are opened per call with a busy timeout, which keeps the
store safe to use from every scheduler worker and HTTP handler thread
without a shared-connection lock.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..core.experiment import ExperimentResult
from ..core.serialize import (
    averaged_to_dict,
    experiment_from_dict,
    experiment_to_dict,
)
from ..errors import ConfigError
from ..obs.logging import get_logger
from ..obs.tracing import span
from .jobs import Job, JobSpec, JobState

__all__ = ["ResultStore"]

_log = get_logger("service.store")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id          TEXT PRIMARY KEY,
    spec_digest TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    error       TEXT,
    created_at  REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    deduplicated INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state);
CREATE INDEX IF NOT EXISTS idx_jobs_digest ON jobs (spec_digest);

CREATE TABLE IF NOT EXISTS results (
    spec_digest TEXT PRIMARY KEY,
    created_at  REAL NOT NULL,
    result_json TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS result_rows (
    spec_digest TEXT NOT NULL,
    workload    TEXT NOT NULL,
    cap_label   TEXT NOT NULL,
    row_json    TEXT NOT NULL,
    PRIMARY KEY (spec_digest, workload, cap_label)
);
"""


class ResultStore:
    """SQLite-backed persistence for jobs and sweep results."""

    def __init__(self, path: "str | os.PathLike") -> None:
        self._path = str(path)
        if Path(self._path).is_dir():
            raise ConfigError(f"store path is a directory: {self._path}")
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    @property
    def path(self) -> str:
        """Location of the database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def record_job(self, job: Job) -> None:
        """Insert or update one job's lifecycle record."""
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO jobs (id, spec_digest, spec_json, "
                "priority, state, attempts, max_attempts, error, created_at, "
                "started_at, finished_at, deduplicated) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job.id,
                    job.spec_digest,
                    json.dumps(job.spec.to_dict(), sort_keys=True),
                    job.priority,
                    job.state.value,
                    job.attempts,
                    job.max_attempts,
                    job.error,
                    job.created_at,
                    job.started_at,
                    job.finished_at,
                    int(job.deduplicated),
                ),
            )

    @staticmethod
    def _job_from_row(row: sqlite3.Row) -> Job:
        return Job(
            spec=JobSpec.from_dict(json.loads(row["spec_json"])),
            id=row["id"],
            priority=row["priority"],
            state=JobState(row["state"]),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            error=row["error"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            deduplicated=bool(row["deduplicated"]),
        )

    def get_job(self, job_id: str) -> Optional[Job]:
        """One job by id, or None."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._job_from_row(row) if row else None

    def list_jobs(self, limit: int = 200) -> List[Job]:
        """Most recent jobs, newest first."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs ORDER BY created_at DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        return [self._job_from_row(r) for r in rows]

    def counts_by_state(self) -> Dict[str, int]:
        """``{state value: job count}`` over every recorded job."""
        counts = {state.value: 0 for state in JobState}
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def pending_jobs(self) -> List[Job]:
        """QUEUED / RUNNING jobs (for crash recovery at startup)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state IN (?, ?) "
                "ORDER BY created_at",
                (JobState.QUEUED.value, JobState.RUNNING.value),
            ).fetchall()
        return [self._job_from_row(r) for r in rows]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def put_result(
        self, spec_digest: str, sweeps: Dict[str, ExperimentResult]
    ) -> None:
        """Persist one sweep document plus its exploded per-cap rows."""
        with span("store_write", spec_digest=spec_digest):
            self._put_result(spec_digest, sweeps)
        _log.debug(
            "result_stored",
            spec_digest=spec_digest,
            workloads=sorted(sweeps),
        )

    def _put_result(
        self, spec_digest: str, sweeps: Dict[str, ExperimentResult]
    ) -> None:
        doc = {
            name: experiment_to_dict(result) for name, result in sweeps.items()
        }
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(spec_digest, created_at, result_json) VALUES (?, ?, ?)",
                (spec_digest, time.time(), json.dumps(doc, sort_keys=True)),
            )
            conn.execute(
                "DELETE FROM result_rows WHERE spec_digest = ?", (spec_digest,)
            )
            for name, result in sweeps.items():
                for row in result.rows():
                    conn.execute(
                        "INSERT OR REPLACE INTO result_rows "
                        "(spec_digest, workload, cap_label, row_json) "
                        "VALUES (?, ?, ?, ?)",
                        (
                            spec_digest,
                            name,
                            row.cap_label,
                            json.dumps(averaged_to_dict(row), sort_keys=True),
                        ),
                    )

    def has_result(self, spec_digest: str) -> bool:
        """Whether a sweep for this digest is already stored."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE spec_digest = ?", (spec_digest,)
            ).fetchone()
        return row is not None

    def get_result_dict(self, spec_digest: str) -> Optional[dict]:
        """The raw sweep document (JSON-decoded), or None."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT result_json FROM results WHERE spec_digest = ?",
                (spec_digest,),
            ).fetchone()
        return json.loads(row["result_json"]) if row else None

    def get_result(
        self, spec_digest: str
    ) -> Optional[Dict[str, ExperimentResult]]:
        """The stored sweeps as live objects, or None."""
        doc = self.get_result_dict(spec_digest)
        if doc is None:
            return None
        return {
            name: experiment_from_dict(data) for name, data in doc.items()
        }

    def result_rows(self, spec_digest: str) -> List[dict]:
        """The exploded per-(workload, cap) rows for one digest."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT workload, cap_label, row_json FROM result_rows "
                "WHERE spec_digest = ? ORDER BY workload, cap_label",
                (spec_digest,),
            ).fetchall()
        return [
            {
                "workload": r["workload"],
                "cap_label": r["cap_label"],
                "row": json.loads(r["row_json"]),
            }
            for r in rows
        ]

    def result_count(self) -> int:
        """Number of distinct stored sweep documents."""
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
