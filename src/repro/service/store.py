"""Pluggable job + result persistence behind one store interface.

The service persists two kinds of state:

- **jobs** — every submission's lifecycle record (spec JSON, state,
  attempts, timestamps), so a restarted service can recover queued
  work and answer status queries for past jobs;
- **results** — one document per distinct :meth:`JobSpec.digest
  <repro.service.jobs.JobSpec.digest>`: the full sweep document
  (``{workload name: experiment_to_dict(...)}``), plus the same sweep
  exploded into per-(workload, cap) rows for cheap tabular queries.

:class:`ResultStoreBase` is the backend contract.  All serialization
lives in the base class — backends only move opaque JSON strings — so
every backend round-trips results identically: the stored JSON is the
exact on-disk format ``save_experiment`` writes, and results loaded
from any store compare equal (dataclass equality, PAPI counter dicts
included) to the live objects.  The conformance suite in
``tests/service/test_store_conformance.py`` runs against every
registered backend.

Backends:

- :class:`SQLiteResultStore` (default; ``ResultStore`` is a
  compatibility alias) — one SQLite file, connections opened per call
  with a busy timeout, safe from every scheduler worker and HTTP
  handler thread without a shared-connection lock;
- :class:`MemoryResultStore` — process-local dicts under a lock; no
  durability, no files.  Used by tests and by load benchmarks that
  must not measure filesystem latency;
- Postgres — not bundled (the container ships no driver), but the
  interface is shaped for it: all backend methods are keyed reads /
  upserts with JSON payloads, exactly what
  ``INSERT ... ON CONFLICT DO UPDATE`` over ``jsonb`` columns needs.
  :func:`open_store` rejects ``postgres://`` URLs with a pointed
  message instead of failing at first use.

:func:`open_store` picks the backend from a URL-ish spec:
``memory://`` for the in-memory store, ``sqlite:///path`` or a bare
filesystem path for SQLite.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.experiment import ExperimentResult
from ..core.serialize import (
    averaged_to_dict,
    experiment_from_dict,
    experiment_to_dict,
)
from ..errors import ConfigError
from ..obs.logging import get_logger
from ..obs.tracing import span
from .jobs import Job, JobSpec, JobState

__all__ = [
    "ResultStoreBase",
    "SQLiteResultStore",
    "MemoryResultStore",
    "ResultStore",
    "open_store",
]

_log = get_logger("service.store")


class ResultStoreBase(abc.ABC):
    """Backend contract for job + result persistence.

    Concrete backends implement the raw keyed operations; everything
    about *what* is stored — serialization, row explosion, dedup
    semantics — is decided here, once, so two backends can never
    drift in their on-disk document format.
    """

    #: Short backend tag for provenance / logs (``sqlite``, ``memory``).
    backend: str = "abstract"

    # ------------------------------------------------------------------
    # Jobs (abstract)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def record_job(self, job: Job) -> None:
        """Insert or update one job's lifecycle record (upsert by id)."""

    @abc.abstractmethod
    def get_job(self, job_id: str) -> Optional[Job]:
        """One job by id, or None."""

    @abc.abstractmethod
    def list_jobs(self, limit: int = 200) -> List[Job]:
        """Most recent jobs, newest first."""

    @abc.abstractmethod
    def counts_by_state(self) -> Dict[str, int]:
        """``{state value: job count}`` over every recorded job."""

    @abc.abstractmethod
    def pending_jobs(self) -> List[Job]:
        """QUEUED / RUNNING jobs (for crash recovery at startup)."""

    # ------------------------------------------------------------------
    # Results (abstract, JSON-string payloads)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _put_result_json(
        self,
        spec_digest: str,
        created_at: float,
        result_json: str,
        rows: List[Tuple[str, str, str]],
    ) -> None:
        """Upsert one sweep document and replace its exploded rows.

        ``rows`` is ``[(workload, cap_label, row_json), ...]``; any
        previously stored rows for the digest must be dropped first.
        """

    @abc.abstractmethod
    def _get_result_json(self, spec_digest: str) -> Optional[str]:
        """The stored sweep document JSON, or None."""

    @abc.abstractmethod
    def has_result(self, spec_digest: str) -> bool:
        """Whether a sweep for this digest is already stored."""

    @abc.abstractmethod
    def result_rows(self, spec_digest: str) -> List[dict]:
        """The exploded per-(workload, cap) rows for one digest."""

    @abc.abstractmethod
    def result_count(self) -> int:
        """Number of distinct stored sweep documents."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (idempotent; default no-op)."""

    # ------------------------------------------------------------------
    # Shared serialization (concrete)
    # ------------------------------------------------------------------

    def put_result(
        self, spec_digest: str, sweeps: Dict[str, ExperimentResult]
    ) -> None:
        """Persist one sweep document plus its exploded per-cap rows."""
        with span("store_write", spec_digest=spec_digest):
            doc = {
                name: experiment_to_dict(result)
                for name, result in sweeps.items()
            }
            rows: List[Tuple[str, str, str]] = []
            for name, result in sweeps.items():
                for row in result.rows():
                    rows.append(
                        (
                            name,
                            row.cap_label,
                            json.dumps(averaged_to_dict(row), sort_keys=True),
                        )
                    )
            self._put_result_json(
                spec_digest,
                time.time(),
                json.dumps(doc, sort_keys=True),
                rows,
            )
        _log.debug(
            "result_stored",
            spec_digest=spec_digest,
            backend=self.backend,
            workloads=sorted(sweeps),
        )

    def put_result_doc(self, spec_digest: str, doc: dict) -> None:
        """Persist an already-serialized sweep document.

        The sharded execution path moves serialized documents between
        processes; this stores one without a serialize → deserialize →
        re-serialize round-trip through live objects.  The rows are
        re-exploded from the document, so the tabular view stays in
        lockstep with :meth:`put_result`.
        """
        sweeps = {
            name: experiment_from_dict(data) for name, data in doc.items()
        }
        rows: List[Tuple[str, str, str]] = []
        for name, result in sweeps.items():
            for row in result.rows():
                rows.append(
                    (
                        name,
                        row.cap_label,
                        json.dumps(averaged_to_dict(row), sort_keys=True),
                    )
                )
        with span("store_write", spec_digest=spec_digest):
            self._put_result_json(
                spec_digest,
                time.time(),
                json.dumps(doc, sort_keys=True),
                rows,
            )

    def get_result_dict(self, spec_digest: str) -> Optional[dict]:
        """The raw sweep document (JSON-decoded), or None."""
        raw = self._get_result_json(spec_digest)
        return json.loads(raw) if raw is not None else None

    def get_result(
        self, spec_digest: str
    ) -> Optional[Dict[str, ExperimentResult]]:
        """The stored sweeps as live objects, or None."""
        doc = self.get_result_dict(spec_digest)
        if doc is None:
            return None
        return {
            name: experiment_from_dict(data) for name, data in doc.items()
        }

    # ------------------------------------------------------------------
    # Shared job (de)serialization helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _job_to_record(job: Job) -> dict:
        """A job as the flat record every backend persists."""
        return {
            "id": job.id,
            "spec_digest": job.spec_digest,
            "spec_json": json.dumps(job.spec.to_dict(), sort_keys=True),
            "priority": job.priority,
            "state": job.state.value,
            "attempts": job.attempts,
            "max_attempts": job.max_attempts,
            "error": job.error,
            "created_at": job.created_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "deduplicated": int(job.deduplicated),
        }

    @staticmethod
    def _job_from_record(row) -> Job:
        """Rebuild a :class:`Job` from a flat record (dict or sqlite Row)."""
        return Job(
            spec=JobSpec.from_dict(json.loads(row["spec_json"])),
            id=row["id"],
            priority=row["priority"],
            state=JobState(row["state"]),
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            error=row["error"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            deduplicated=bool(row["deduplicated"]),
        )


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id          TEXT PRIMARY KEY,
    spec_digest TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    error       TEXT,
    created_at  REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    deduplicated INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state);
CREATE INDEX IF NOT EXISTS idx_jobs_digest ON jobs (spec_digest);

CREATE TABLE IF NOT EXISTS results (
    spec_digest TEXT PRIMARY KEY,
    created_at  REAL NOT NULL,
    result_json TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS result_rows (
    spec_digest TEXT NOT NULL,
    workload    TEXT NOT NULL,
    cap_label   TEXT NOT NULL,
    row_json    TEXT NOT NULL,
    PRIMARY KEY (spec_digest, workload, cap_label)
);
"""


class SQLiteResultStore(ResultStoreBase):
    """SQLite-backed persistence for jobs and sweep results."""

    backend = "sqlite"

    def __init__(self, path: "str | os.PathLike") -> None:
        self._path = str(path)
        if Path(self._path).is_dir():
            raise ConfigError(f"store path is a directory: {self._path}")
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    @property
    def path(self) -> str:
        """Location of the database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def record_job(self, job: Job) -> None:
        rec = self._job_to_record(job)
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO jobs (id, spec_digest, spec_json, "
                "priority, state, attempts, max_attempts, error, created_at, "
                "started_at, finished_at, deduplicated) "
                "VALUES (:id, :spec_digest, :spec_json, :priority, :state, "
                ":attempts, :max_attempts, :error, :created_at, :started_at, "
                ":finished_at, :deduplicated)",
                rec,
            )

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._job_from_record(row) if row else None

    def list_jobs(self, limit: int = 200) -> List[Job]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs ORDER BY created_at DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        return [self._job_from_record(r) for r in rows]

    def counts_by_state(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def pending_jobs(self) -> List[Job]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state IN (?, ?) "
                "ORDER BY created_at",
                (JobState.QUEUED.value, JobState.RUNNING.value),
            ).fetchall()
        return [self._job_from_record(r) for r in rows]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _put_result_json(
        self,
        spec_digest: str,
        created_at: float,
        result_json: str,
        rows: List[Tuple[str, str, str]],
    ) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(spec_digest, created_at, result_json) VALUES (?, ?, ?)",
                (spec_digest, created_at, result_json),
            )
            conn.execute(
                "DELETE FROM result_rows WHERE spec_digest = ?", (spec_digest,)
            )
            for workload, cap_label, row_json in rows:
                conn.execute(
                    "INSERT OR REPLACE INTO result_rows "
                    "(spec_digest, workload, cap_label, row_json) "
                    "VALUES (?, ?, ?, ?)",
                    (spec_digest, workload, cap_label, row_json),
                )

    def _get_result_json(self, spec_digest: str) -> Optional[str]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT result_json FROM results WHERE spec_digest = ?",
                (spec_digest,),
            ).fetchone()
        return row["result_json"] if row else None

    def has_result(self, spec_digest: str) -> bool:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE spec_digest = ?", (spec_digest,)
            ).fetchone()
        return row is not None

    def result_rows(self, spec_digest: str) -> List[dict]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT workload, cap_label, row_json FROM result_rows "
                "WHERE spec_digest = ? ORDER BY workload, cap_label",
                (spec_digest,),
            ).fetchall()
        return [
            {
                "workload": r["workload"],
                "cap_label": r["cap_label"],
                "row": json.loads(r["row_json"]),
            }
            for r in rows
        ]

    def result_count(self) -> int:
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]


class MemoryResultStore(ResultStoreBase):
    """In-process store: dicts under a lock, no durability.

    Holds exactly the JSON strings the SQLite backend would, so the
    two backends are byte-for-byte interchangeable for everything but
    persistence across restarts.
    """

    backend = "memory"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._jobs: Dict[str, dict] = {}
        self._results: Dict[str, Tuple[float, str]] = {}
        self._rows: Dict[str, List[Tuple[str, str, str]]] = {}

    # Jobs ---------------------------------------------------------------

    def record_job(self, job: Job) -> None:
        rec = self._job_to_record(job)
        with self._lock:
            self._jobs[job.id] = rec

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            rec = self._jobs.get(job_id)
        return self._job_from_record(rec) if rec else None

    def list_jobs(self, limit: int = 200) -> List[Job]:
        with self._lock:
            recs = sorted(
                self._jobs.values(),
                key=lambda r: r["created_at"],
                reverse=True,
            )[: int(limit)]
        return [self._job_from_record(r) for r in recs]

    def counts_by_state(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for rec in self._jobs.values():
                counts[rec["state"]] += 1
        return counts

    def pending_jobs(self) -> List[Job]:
        pending = (JobState.QUEUED.value, JobState.RUNNING.value)
        with self._lock:
            recs = sorted(
                (r for r in self._jobs.values() if r["state"] in pending),
                key=lambda r: r["created_at"],
            )
        return [self._job_from_record(r) for r in recs]

    # Results ------------------------------------------------------------

    def _put_result_json(
        self,
        spec_digest: str,
        created_at: float,
        result_json: str,
        rows: List[Tuple[str, str, str]],
    ) -> None:
        with self._lock:
            self._results[spec_digest] = (created_at, result_json)
            self._rows[spec_digest] = list(rows)

    def _get_result_json(self, spec_digest: str) -> Optional[str]:
        with self._lock:
            entry = self._results.get(spec_digest)
        return entry[1] if entry else None

    def has_result(self, spec_digest: str) -> bool:
        with self._lock:
            return spec_digest in self._results

    def result_rows(self, spec_digest: str) -> List[dict]:
        with self._lock:
            rows = list(self._rows.get(spec_digest, ()))
        return [
            {
                "workload": workload,
                "cap_label": cap_label,
                "row": json.loads(row_json),
            }
            for workload, cap_label, row_json in sorted(rows)
        ]

    def result_count(self) -> int:
        with self._lock:
            return len(self._results)


#: Compatibility alias — the historical concrete class name.  Existing
#: code (and the tier-1 tests) construct ``ResultStore(path)``; that
#: keeps working and now yields the SQLite backend explicitly.
ResultStore = SQLiteResultStore


def open_store(spec: "str | os.PathLike | ResultStoreBase") -> ResultStoreBase:
    """Build a store from a URL-ish spec (or pass an instance through).

    - ``memory://`` → :class:`MemoryResultStore`
    - ``sqlite:///path/to.db`` or ``sqlite:path`` → SQLite at that path
    - ``postgres://…`` → rejected with a pointer (no bundled driver)
    - anything else → treated as a SQLite file path
    """
    if isinstance(spec, ResultStoreBase):
        return spec
    text = str(spec)
    if text == "memory://":
        return MemoryResultStore()
    if text.startswith(("postgres://", "postgresql://")):
        raise ConfigError(
            "no Postgres driver is bundled with this build; the "
            "ResultStore interface supports it — implement "
            "ResultStoreBase over your driver and pass the instance in"
        )
    if text.startswith("sqlite://"):
        # sqlite:///abs/path → /abs/path; sqlite://rel/path → rel/path
        text = text[len("sqlite://"):]
    return SQLiteResultStore(text)
