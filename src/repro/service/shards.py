"""Partitioned worker shards: one process per rate-cache partition.

The scheduler's thread workers are fine for orchestration — lifecycle
transitions, store writes, retries — but the simulation itself is CPU
bound, and Python threads serialize it behind the GIL.  This module
moves the simulation into a pool of long-lived **shard processes**:

- jobs are routed to shards by **consistent hashing over the spec
  digest** (:class:`ShardRing`), so every spec lands on the same shard
  for the lifetime of the pool and each shard's rate-cache partition
  accumulates exactly the (workload, geometry, gating) rates its slice
  of the digest space needs — no cross-shard write contention, no
  duplicated trace simulation across restarts of the same spec;
- each shard owns a private :class:`~repro.core.ratecache.RateCache`
  partition file (``<rate_cache>.shard<k>``) opened read-write in the
  shard process only.  The parent observes partitions with
  ``RateCache(mode="ro")`` snapshots — it can count entries and report
  stats without ever writing another process's file;
- results cross the process boundary as the **serialized sweep
  document** (the exact ``experiment_to_dict`` JSON form the store
  persists), so the sharded path stores byte-identical documents to
  the in-process path — the serialize round-trip is exact by contract
  (tier-1 ``tests/core/test_serialize.py``).

Like the sweep engine's warm-worker pool (PR 6), fan-out falls back to
in-process execution where it cannot help: a single-core host, or a
requested shard count below 2.  The fallback is recorded —
``effective_shards`` is 0 and a warning is logged — mirroring
``effective_jobs`` in sweep provenance.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

import multiprocessing as mp

from ..errors import ReproError, SimulationError
from ..obs.logging import get_logger

__all__ = ["ShardRing", "ShardPool", "effective_shard_count"]

_log = get_logger("service.shards")

#: Virtual nodes per shard on the hash ring.  Enough that adding one
#: shard moves ~1/N of the digest space, few enough that ring build
#: stays trivial.
_RING_REPLICAS = 64


class ShardRing:
    """Consistent hash ring mapping spec digests to shard indices."""

    def __init__(self, shards: int, replicas: int = _RING_REPLICAS) -> None:
        if shards < 1:
            raise SimulationError(f"need >= 1 shard, got {shards}")
        self.shards = int(shards)
        points: List[Tuple[int, int]] = []
        for shard in range(self.shards):
            for replica in range(int(replicas)):
                token = f"shard-{shard}-{replica}".encode()
                digest = hashlib.blake2b(token, digest_size=8).hexdigest()
                points.append((int(digest, 16), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, spec_digest: str) -> int:
        """The shard owning ``spec_digest`` (a hex digest string)."""
        key = int(
            hashlib.blake2b(
                spec_digest.encode(), digest_size=8
            ).hexdigest(),
            16,
        )
        idx = bisect.bisect(self._points, key)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]


def effective_shard_count(requested: int) -> int:
    """Shard count after the single-core fallback (0 = in-process).

    Mirrors ``PowerCapExperiment._effective_jobs``: process fan-out on
    a single-core host only adds dispatch overhead, so fall back to
    in-process execution with a logged warning.  ``REPRO_SHARD_FORCE=1``
    overrides (tests exercise real shard processes on any host).
    """
    requested = max(0, int(requested))
    if requested < 2:
        return 0
    if os.environ.get("REPRO_SHARD_FORCE", "") == "1":
        return requested
    cpus = os.cpu_count() or 1
    if cpus < 2:
        _log.warning(
            "shard_fallback",
            reason="single_core",
            cpu_count=cpus,
            requested_shards=requested,
        )
        return 0
    return min(requested, cpus)


def _shard_main(
    shard_id: int,
    req_q,
    resp_q,
    rate_cache_path: Optional[str],
    slice_accesses: int,
    batch: "bool | None",
) -> None:
    """One shard process: warm runner state, serve until sentinel.

    Imports are deferred so a ``spawn`` start method only pays them in
    the child; the rate-cache partition is opened read-write here and
    nowhere else.
    """
    from ..core.experiment import PowerCapExperiment
    from ..core.ratecache import RateCache
    from ..core.serialize import experiment_to_dict
    from ..workloads import make_workload
    from .jobs import JobSpec

    cache = (
        RateCache(rate_cache_path) if rate_cache_path is not None else None
    )
    hits0 = misses0 = 0
    while True:
        msg = req_q.get()
        if msg is None:
            break
        t0 = time.perf_counter()
        try:
            spec = JobSpec.from_dict(msg["spec"])
            workload = make_workload(spec.workload, spec.scale)
            experiment = PowerCapExperiment(
                [workload],
                caps_w=spec.caps_w,
                repetitions=spec.repetitions,
                seed=spec.seed,
                slice_accesses=slice_accesses,
                rate_cache=cache,
                batch=batch,
            )
            sweeps = experiment.run_all(jobs=spec.jobs)
            doc = {
                name: experiment_to_dict(result)
                for name, result in sweeps.items()
            }
            if cache is not None:
                cache.save()
                hits, misses = cache.hits, cache.misses
            else:
                hits = misses = 0
            resp_q.put(
                {
                    "ok": True,
                    "doc": doc,
                    "wall_s": time.perf_counter() - t0,
                    "cache_hits": hits - hits0,
                    "cache_misses": misses - misses0,
                }
            )
            hits0, misses0 = hits, misses
        except Exception as exc:  # noqa: BLE001 — crosses the pipe as data
            resp_q.put(
                {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "repro_error": isinstance(exc, ReproError),
                    "wall_s": time.perf_counter() - t0,
                }
            )
    if cache is not None:
        cache.close()


class ShardPool:
    """N shard processes, each owning one rate-cache partition.

    One in-flight job per shard (a shard is a single simulation loop;
    queueing more would only hide latency from the scheduler's retry
    accounting).  Thread-safe: scheduler workers serialize per shard
    through the shard's lock and block on its private response queue.
    """

    def __init__(
        self,
        shards: int,
        rate_cache: "str | os.PathLike | None" = None,
        slice_accesses: int = 320_000,
        batch: "bool | None" = None,
        start_timeout_s: float = 60.0,
    ) -> None:
        if shards < 2:
            raise SimulationError(
                f"a shard pool needs >= 2 shards, got {shards} "
                "(use in-process execution below that)"
            )
        self.shards = int(shards)
        self._rate_cache_base = (
            str(rate_cache) if rate_cache is not None else None
        )
        self._slice_accesses = int(slice_accesses)
        self._batch = batch
        self._start_timeout_s = float(start_timeout_s)
        self._ring = ShardRing(self.shards)
        self._procs: List[mp.Process] = []
        self._req_qs: List = []
        self._resp_qs: List = []
        self._locks: List[threading.Lock] = []
        self._dispatched = [0] * self.shards
        self._stats_lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def partition_path(self, shard: int) -> Optional[str]:
        """The rate-cache partition file shard ``shard`` owns."""
        if self._rate_cache_base is None:
            return None
        return f"{self._rate_cache_base}.shard{shard}"

    def start(self) -> None:
        """Spawn the shard processes (idempotent)."""
        if self._started:
            return
        ctx = mp.get_context()
        for shard in range(self.shards):
            req_q = ctx.Queue()
            resp_q = ctx.Queue()
            proc = ctx.Process(
                target=_shard_main,
                name=f"repro-shard-{shard}",
                args=(
                    shard,
                    req_q,
                    resp_q,
                    self.partition_path(shard),
                    self._slice_accesses,
                    self._batch,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            self._req_qs.append(req_q)
            self._resp_qs.append(resp_q)
            self._locks.append(threading.Lock())
        self._started = True
        _log.info(
            "shard_pool_started",
            shards=self.shards,
            rate_cache=self._rate_cache_base or "off",
        )

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain-stop every shard: sentinel, join, terminate stragglers.

        Each shard flushes its rate-cache partition before exiting, so
        a graceful shutdown loses no memoized rates.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        for req_q in self._req_qs:
            try:
                req_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + float(timeout)
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                _log.warning(
                    "shard_terminated", shard=proc.name, graceful=False
                )
                proc.terminate()
                proc.join(timeout=5.0)
        _log.info("shard_pool_stopped", shards=self.shards)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def shard_for(self, spec_digest: str) -> int:
        """Which shard a digest routes to (exposed for tests/ops)."""
        return self._ring.shard_for(spec_digest)

    def run(self, spec_digest: str, spec_dict: dict) -> dict:
        """Run one spec on its owning shard; returns the serialized doc.

        Raises :class:`SimulationError` for deterministic simulation
        failures (no point retrying) and :class:`RuntimeError` for
        shard crashes (the scheduler's retry path treats those as
        transient).
        """
        if not self._started or self._closed:
            raise RuntimeError("shard pool is not running")
        shard = self._ring.shard_for(spec_digest)
        with self._locks[shard]:
            self._req_qs[shard].put({"spec": spec_dict})
            reply = self._await_reply(shard)
        with self._stats_lock:
            self._dispatched[shard] += 1
            self.cache_hits += int(reply.get("cache_hits", 0))
            self.cache_misses += int(reply.get("cache_misses", 0))
        if reply["ok"]:
            return reply["doc"]
        if reply.get("repro_error"):
            raise SimulationError(f"shard {shard}: {reply['error']}")
        raise RuntimeError(f"shard {shard}: {reply['error']}")

    def _await_reply(self, shard: int) -> dict:
        """Block for the shard's reply, noticing a dead process."""
        import queue as _queue

        while True:
            try:
                return self._resp_qs[shard].get(timeout=1.0)
            except _queue.Empty:
                if self._closed:
                    raise RuntimeError(
                        f"shard pool shut down mid-job (shard {shard})"
                    )
                if not self._procs[shard].is_alive():
                    raise RuntimeError(
                        f"shard {shard} process died "
                        f"(exitcode {self._procs[shard].exitcode})"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Dispatch counts, aggregated cache deltas, partition sizes.

        Partition entry counts come from ``RateCache(mode="ro")``
        snapshots of each shard's file — observation only, never a
        write to another process's partition.
        """
        with self._stats_lock:
            dispatched = list(self._dispatched)
            hits, misses = self.cache_hits, self.cache_misses
        entries: Dict[str, int] = {}
        if self._rate_cache_base is not None:
            from ..core.ratecache import RateCache

            for shard in range(self.shards):
                path = self.partition_path(shard)
                try:
                    entries[str(shard)] = len(RateCache(path, mode="ro"))
                except (OSError, SimulationError):
                    entries[str(shard)] = 0
        return {
            "shards": self.shards,
            "dispatched": dispatched,
            "cache_hits": hits,
            "cache_misses": misses,
            "partition_entries": entries,
        }
