"""Scheduler: a thread worker pool draining the job queue.

Each worker pops the highest-priority queued job, builds the paper's
:class:`~repro.core.experiment.PowerCapExperiment` from the spec, and
drives ``run_all(jobs=spec.jobs)`` — so a single job can itself fan
out over processes exactly as the CLI does.  All workers share one
:class:`~repro.core.ratecache.RateCache`, so distinct jobs over the
same (workload, geometry, gating) skip trace simulation entirely.

Failure containment: an exception inside a sweep marks the attempt,
re-queues the job with exponential backoff while attempts remain, and
moves it to FAILED once the retry budget is spent.  ``shutdown`` can
drain (finish everything queued) or stop after in-flight jobs.

Dedup: submission and execution both consult the result store by spec
digest — an identical spec is answered from SQLite, never re-simulated.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

import os

from ..core.experiment import ExperimentResult, PowerCapExperiment
from ..core.ratecache import RateCache
from ..core.serialize import experiment_from_dict, experiment_to_dict
from ..errors import ReproError
from ..obs.archive import ObsArchive, distill_experiment_doc
from ..obs.logging import get_logger
from ..obs.stream import JOB_TOPIC_PREFIX, event_bus, stream_context
from ..obs.tracing import span
from ..workloads import make_workload
from .jobs import Job, JobQueue, JobSpec, JobState
from .metrics import ServiceMetrics
from .shards import ShardPool
from .store import ResultStoreBase

__all__ = ["ExperimentScheduler"]

_log = get_logger("service.scheduler")


class ExperimentScheduler:
    """Submit/schedule/store orchestration over a thread worker pool."""

    def __init__(
        self,
        store: ResultStoreBase,
        workers: int = 2,
        rate_cache: "RateCache | str | os.PathLike | None" = None,
        metrics: Optional[ServiceMetrics] = None,
        max_attempts: int = 3,
        retry_backoff_s: float = 0.5,
        slice_accesses: int = 320_000,
        batch: "bool | None" = None,
        archive: Optional[ObsArchive] = None,
        shard_pool: Optional[ShardPool] = None,
    ) -> None:
        self._store = store
        self._archive = archive
        self._queue = JobQueue()
        self._workers = max(1, int(workers))
        if rate_cache is not None and not isinstance(rate_cache, RateCache):
            rate_cache = RateCache(rate_cache)
        self._rate_cache: Optional[RateCache] = rate_cache
        self._shard_pool = shard_pool
        self.metrics = metrics or ServiceMetrics()
        self._max_attempts = max(1, int(max_attempts))
        self._retry_backoff_s = float(retry_backoff_s)
        self._slice_accesses = int(slice_accesses)
        self._batch = batch
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._threads: List[threading.Thread] = []
        self._running = 0
        self._idle = threading.Condition(self._lock)
        self._started = False
        #: Recent completion stamps, for the admission gate's
        #: drain-aware Retry-After estimate.
        self._completions: "deque[float]" = deque(maxlen=256)
        self.metrics.bind(
            queue_depth=self._queue.depth,
            jobs_by_state=self._counts_by_state_float,
            cache_hits=self._cache_hits_total,
            cache_misses=self._cache_misses_total,
        )
        self.metrics.bind_shards(lambda: float(self.effective_shards))

    def _cache_hits_total(self) -> float:
        hits = self._rate_cache.hits if self._rate_cache else 0
        if self._shard_pool is not None:
            hits += self._shard_pool.cache_hits
        return float(hits)

    def _cache_misses_total(self) -> float:
        misses = self._rate_cache.misses if self._rate_cache else 0
        if self._shard_pool is not None:
            misses += self._shard_pool.cache_misses
        return float(misses)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rate_cache(self) -> Optional[RateCache]:
        """The shared cross-job rate cache (None when disabled)."""
        return self._rate_cache

    @property
    def workers(self) -> int:
        """Size of the worker pool."""
        return self._workers

    @property
    def effective_shards(self) -> int:
        """Shard processes actually running (0 = in-process execution)."""
        return self._shard_pool.shards if self._shard_pool is not None else 0

    @property
    def shard_pool(self) -> Optional[ShardPool]:
        """The partitioned worker pool (None when unsharded)."""
        return self._shard_pool

    def drain_rate(self) -> float:
        """Recent completion throughput (jobs/s) over a 30 s window.

        Feeds the admission gate's queue-full ``Retry-After`` estimate;
        0.0 until at least two completions land inside the window.
        """
        now = time.monotonic()
        with self._lock:
            recent = [t for t in self._completions if now - t <= 30.0]
        if len(recent) < 2:
            return 0.0
        window = max(1e-6, recent[-1] - recent[0])
        return (len(recent) - 1) / window

    def queue_depth(self) -> int:
        """Jobs queued (including retry backoff) and not yet running."""
        return self._queue.depth()

    def counts_by_state(self) -> Dict[str, int]:
        """``{state value: count}`` over every job this process knows."""
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts

    def _counts_by_state_float(self) -> Dict[str, float]:
        return {k: float(v) for k, v in self.counts_by_state().items()}

    def jobs(self) -> List[Job]:
        """Every job known to this process, newest first."""
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.created_at, reverse=True
            )

    def get(self, job_id: str) -> Optional[Job]:
        """One job by id — live registry first, then the store."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job
        return self._store.get_job(job_id)

    # ------------------------------------------------------------------
    # Submission / cancellation
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        priority: int = 0,
        max_attempts: Optional[int] = None,
    ) -> Job:
        """Accept one sweep request; returns its lifecycle record.

        If the result store already holds this spec's digest the job is
        born DONE (``deduplicated=True``) and never touches the queue.
        """
        job = Job(
            spec=spec,
            priority=int(priority),
            max_attempts=max_attempts or self._max_attempts,
        )
        self.metrics.jobs_submitted.inc()
        if self._store.has_result(job.spec_digest):
            job.state = JobState.DONE
            job.deduplicated = True
            job.finished_at = time.time()
            self.metrics.dedup_hits.inc()
            self.metrics.jobs_completed.inc()
        with self._lock:
            self._jobs[job.id] = job
        self._store.record_job(job)
        _log.info(
            "job_submitted",
            job_id=job.id,
            spec_digest=job.spec_digest,
            workload=spec.workload,
            priority=job.priority,
            deduplicated=job.deduplicated,
        )
        if job.state is JobState.QUEUED:
            self._queue.push(job)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a QUEUED job; False if unknown or already beyond QUEUED."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
        self._store.record_job(job)
        event_bus().publish(
            JOB_TOPIC_PREFIX + job.id,
            "job_cancelled",
            {"job_id": job.id},
        )
        return True

    def recover(self) -> int:
        """Re-queue jobs a previous process left QUEUED/RUNNING."""
        recovered = 0
        for job in self._store.pending_jobs():
            with self._lock:
                if job.id in self._jobs:
                    continue
                job.state = JobState.QUEUED
                self._jobs[job.id] = job
            self._store.record_job(job)
            self._queue.push(job)
            recovered += 1
        if recovered:
            _log.info("jobs_recovered", count=recovered)
        return recovered

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        for i in range(self._workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queue.depth() > 0 or self._running > 0:
                wait = 0.1
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    wait = min(wait, remaining)
                self._idle.wait(wait)
        return True

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = 60.0
    ) -> None:
        """Stop the pool; with ``drain`` finish all queued work first.

        Without ``drain``, queued jobs are discarded from the in-memory
        queue but stay QUEUED in the store — :meth:`recover` picks them
        up on the next start, so a fast shutdown loses no submissions.
        In-flight jobs are always allowed to finish (a sweep is not
        interruptible mid-simulation without corrupting its attempt
        accounting).
        """
        if drain:
            self.drain(timeout)
            self._queue.close()
        else:
            discarded = self._queue.close(discard=True)
            for job in discarded:
                # Still QUEUED: persist that state so recover() re-runs
                # them after restart.
                self._store.record_job(job)
            if discarded:
                _log.info("jobs_deferred", count=len(discarded))
            # Wait (bounded) for in-flight jobs to land.
            deadline = time.monotonic() + (timeout or 0.0)
            with self._idle:
                while self._running > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._idle.wait(min(0.1, remaining))
        for t in self._threads:
            t.join(timeout=5.0)
        if self._rate_cache is not None:
            self._rate_cache.save()
        if self._shard_pool is not None:
            self._shard_pool.shutdown()

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.pop(timeout=0.2)
            if job is None:
                if self._queue.closed:
                    return
                continue
            with self._lock:
                self._running += 1
            try:
                self._run_job(job)
            finally:
                with self._idle:
                    self._running -= 1
                    self._idle.notify_all()

    def _run_spec(self, spec: JobSpec) -> Dict[str, ExperimentResult]:
        if self._shard_pool is not None:
            # Sharded path: the owning shard returns the serialized
            # sweep document; deserializing here keeps every consumer
            # (store, archive, SSE) on the same object shapes as the
            # in-process path.  The round-trip is exact by contract, so
            # the stored bytes are identical either way.
            doc = self._shard_pool.run(spec.digest(), spec.to_dict())
            return {
                name: experiment_from_dict(payload)
                for name, payload in doc.items()
            }
        workload = make_workload(spec.workload, spec.scale)
        experiment = PowerCapExperiment(
            [workload],
            caps_w=spec.caps_w,
            repetitions=spec.repetitions,
            seed=spec.seed,
            slice_accesses=self._slice_accesses,
            rate_cache=self._rate_cache,
            batch=self._batch,
        )
        return experiment.run_all(jobs=spec.jobs)

    def _archive_run(
        self,
        job: Job,
        sweeps: Dict[str, ExperimentResult],
        wall_s: float,
    ) -> None:
        """Distill one freshly simulated job into the archive.

        Dedup-answered jobs are skipped upstream — their twin already
        landed a record, and re-recording would double-count.  Archive
        faults must never fail a job that just finished simulating.
        """
        if self._archive is None:
            return
        try:
            docs = {
                name: experiment_to_dict(result)
                for name, result in sweeps.items()
            }
            series, meta = distill_experiment_doc(docs, wall_s=wall_s)
            meta["spec_digest"] = job.spec_digest
            self._archive.record_run(
                job.id, "job", series, meta=meta, source="service"
            )
        except Exception as exc:  # noqa: BLE001 — archive is best-effort
            _log.warning(
                "archive_record_failed", job_id=job.id, error=str(exc)
            )

    def _run_job(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.started_at = time.time()
        job.attempts += 1
        self._store.record_job(job)
        _log.info(
            "job_started",
            job_id=job.id,
            workload=job.spec.workload,
            attempt=job.attempts,
        )
        topic = JOB_TOPIC_PREFIX + job.id
        event_bus().publish(
            topic,
            "job_started",
            {
                "job_id": job.id,
                "workload": job.spec.workload,
                "attempt": job.attempts,
            },
        )
        t0 = time.perf_counter()
        try:
            # A duplicate that queued before its twin finished can be
            # answered from the store the moment it reaches a worker.
            if self._store.has_result(job.spec_digest):
                job.deduplicated = True
                self.metrics.dedup_hits.inc()
            else:
                with span("job", job_id=job.id, workload=job.spec.workload):
                    # The stream context routes the sampler's bucket
                    # flushes and the phenomenon detectors into this
                    # job's topic for the SSE endpoint.
                    with stream_context(topic):
                        sweeps = self._run_spec(job.spec)
                self._store.put_result(job.spec_digest, sweeps)
                self._archive_run(job, sweeps, time.perf_counter() - t0)
            job.state = JobState.DONE
            job.error = None
            job.finished_at = time.time()
            with self._lock:
                self._completions.append(time.monotonic())
            self.metrics.jobs_completed.inc()
            self.metrics.sweep_seconds.observe(time.perf_counter() - t0)
            _log.info(
                "job_done",
                job_id=job.id,
                deduplicated=job.deduplicated,
                wall_s=round(time.perf_counter() - t0, 6),
            )
            event_bus().publish(
                topic,
                "job_done",
                {
                    "job_id": job.id,
                    "deduplicated": job.deduplicated,
                    "wall_s": round(time.perf_counter() - t0, 6),
                },
            )
        except Exception as exc:  # noqa: BLE001 — worker crash containment
            job.error = f"{type(exc).__name__}: {exc}"
            if job.attempts < job.max_attempts and not isinstance(
                exc, ReproError
            ):
                # Transient crash: exponential backoff, back of the line.
                job.state = JobState.QUEUED
                self.metrics.job_retries.inc()
                self._store.record_job(job)
                _log.warning(
                    "job_retry",
                    job_id=job.id,
                    attempt=job.attempts,
                    max_attempts=job.max_attempts,
                    error=job.error,
                )
                event_bus().publish(
                    topic,
                    "job_retry",
                    {
                        "job_id": job.id,
                        "attempt": job.attempts,
                        "max_attempts": job.max_attempts,
                        "error": job.error,
                    },
                )
                self._queue.push(
                    job,
                    delay_s=self._retry_backoff_s * 2 ** (job.attempts - 1),
                )
                return
            job.state = JobState.FAILED
            job.finished_at = time.time()
            with self._lock:
                self._completions.append(time.monotonic())
            self.metrics.jobs_failed.inc()
            _log.error(
                "job_failed",
                job_id=job.id,
                attempts=job.attempts,
                error=job.error,
            )
            event_bus().publish(
                topic,
                "job_failed",
                {
                    "job_id": job.id,
                    "attempts": job.attempts,
                    "error": job.error,
                },
            )
        self._store.record_job(job)
