"""Deterministic random-number streams.

Every stochastic component of the simulator (sensor noise, transport
jitter, speculative-execution wobble, annealing proposals, ...) draws
from a *named stream* derived from a single experiment seed.  This keeps
whole experiments bit-reproducible while letting subsystems evolve
independently: adding a draw to one stream does not perturb any other.

Usage
-----
>>> streams = RngStreams(seed=42)
>>> meter_rng = streams.stream("power-meter")
>>> again = RngStreams(seed=42).stream("power-meter")
>>> float(meter_rng.normal()) == float(again.normal())
True
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "derive_seed", "DEFAULT_SEED"]

DEFAULT_SEED = 20120910  # first day of ICPPW 2012, the paper's venue


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses BLAKE2b so that stream names with shared prefixes still get
    statistically independent seeds (unlike additive schemes).
    """
    digest = hashlib.blake2b(
        f"{int(root_seed)}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngStreams:
    """A factory of named, independently-seeded NumPy generators.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.  Two :class:`RngStreams`
        built from the same seed hand out identical streams.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws within one run advance a single stream.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self._seed, name)
            )
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` at its initial state.

        Unlike :meth:`stream`, the result is not cached; use this when a
        component must restart its stream (e.g. per-repetition reseeding
        of measurement noise).
        """
        return np.random.default_rng(derive_seed(self._seed, name))

    def child(self, name: str) -> "RngStreams":
        """Derive a whole child factory, e.g. one per repetition."""
        return RngStreams(derive_seed(self._seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
