"""Stereo matching by simulated annealing.

The real algorithm (after Shires' Monte-Carlo image-matching, ARL 1995):
estimate the disparity field by minimising an energy that combines a
data term (sum of squared differences between a left-image window and
the disparity-shifted right-image window) and a smoothness term
(quadratic penalty on neighbour disparity differences).  The solver is
Metropolis simulated annealing: propose a disparity perturbation at a
random pixel, accept with probability ``exp(-dE/T)``, cool ``T``
geometrically.

Memory behaviour of the full-scale run: each proposal reads two small
image windows at a *random* image location plus the local disparity
neighbourhood — a cache-resident working set with scattered accesses,
which is why Stereo Matching is so much more sensitive to cache way
gating than the streaming SIRE/RSM (Table II: L2 +244 %, L3 +371 % at
the lowest caps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..trace.events import TraceSlice
from ..trace.sampler import interleave
from ..trace.synthetic import (
    loop_ifetch_trace,
    random_trace,
    streaming_trace,
    windowed_random_trace,
)
from .base import Workload, WorkloadSpec
from .wedding_cake import render_stereo_pair, wedding_cake_disparity

__all__ = ["AnnealingSchedule", "StereoMatcher", "StereoMatchingWorkload"]


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling schedule."""

    t_initial: float = 2.0
    t_final: float = 0.01
    cooling: float = 0.95
    sweeps_per_temperature: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.t_final < self.t_initial:
            raise WorkloadError("need 0 < t_final < t_initial")
        if not 0.0 < self.cooling < 1.0:
            raise WorkloadError("cooling factor must be in (0, 1)")
        if self.sweeps_per_temperature < 1:
            raise WorkloadError("sweeps_per_temperature must be >= 1")

    def temperatures(self) -> np.ndarray:
        """The full cooling ladder."""
        temps = []
        t = self.t_initial
        while t > self.t_final:
            temps.append(t)
            t *= self.cooling
        return np.array(temps)


class StereoMatcher:
    """Simulated-annealing disparity estimator."""

    def __init__(
        self,
        left: np.ndarray,
        right: np.ndarray,
        max_disparity: int = 15,
        window: int = 5,
        smoothness: float = 0.08,
    ) -> None:
        if left.shape != right.shape or left.ndim != 2:
            raise WorkloadError("left/right must be equal-shape 2-D images")
        if window % 2 == 0 or window < 3:
            raise WorkloadError("window must be odd and >= 3")
        if max_disparity < 1:
            raise WorkloadError("max_disparity must be >= 1")
        self.left = np.asarray(left, dtype=np.float64)
        self.right = np.asarray(right, dtype=np.float64)
        self.max_disparity = int(max_disparity)
        self.window = int(window)
        self.smoothness = float(smoothness)
        self._half = window // 2

    def data_cost(self, y: int, x: int, d: int) -> float:
        """SSD between the left window at (y,x) and right at (y,x-d)."""
        h, w = self.left.shape
        k = self._half
        y0, y1 = max(0, y - k), min(h, y + k + 1)
        x0, x1 = max(0, x - k), min(w, x + k + 1)
        xs0, xs1 = x0 - d, x1 - d
        if xs0 < 0 or xs1 > w:
            return 1e3  # window falls off the right image: forbidden
        lw = self.left[y0:y1, x0:x1]
        rw = self.right[y0:y1, xs0:xs1]
        return float(np.mean((lw - rw) ** 2))

    def smoothness_cost(self, disparity: np.ndarray, y: int, x: int, d: int) -> float:
        """Quadratic neighbour penalty for assigning ``d`` at (y,x)."""
        h, w = disparity.shape
        cost = 0.0
        for dy, dx in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ny, nx = y + dy, x + dx
            if 0 <= ny < h and 0 <= nx < w:
                cost += (d - float(disparity[ny, nx])) ** 2
        return self.smoothness * cost

    def energy_delta(
        self, disparity: np.ndarray, y: int, x: int, d_new: int
    ) -> float:
        """Energy change of flipping pixel (y,x) to ``d_new``."""
        d_old = int(disparity[y, x])
        if d_new == d_old:
            return 0.0
        return (
            self.data_cost(y, x, d_new)
            + self.smoothness_cost(disparity, y, x, d_new)
            - self.data_cost(y, x, d_old)
            - self.smoothness_cost(disparity, y, x, d_old)
        )

    def solve(
        self,
        schedule: AnnealingSchedule,
        rng: np.random.Generator,
        initial: np.ndarray | None = None,
    ) -> tuple[np.ndarray, dict]:
        """Anneal the disparity field; returns (disparity, stats)."""
        h, w = self.left.shape
        disparity = (
            rng.integers(0, self.max_disparity + 1, size=(h, w)).astype(np.int32)
            if initial is None
            else initial.astype(np.int32).copy()
        )
        proposals = 0
        accepts = 0
        for t in schedule.temperatures():
            for _ in range(schedule.sweeps_per_temperature * h * w):
                y = int(rng.integers(0, h))
                x = int(rng.integers(0, w))
                d_new = int(
                    np.clip(
                        disparity[y, x] + rng.choice((-2, -1, 1, 2)),
                        0,
                        self.max_disparity,
                    )
                )
                de = self.energy_delta(disparity, y, x, d_new)
                proposals += 1
                if de <= 0 or rng.random() < np.exp(-de / t):
                    disparity[y, x] = d_new
                    accepts += 1
        return disparity, {
            "proposals": proposals,
            "accepts": accepts,
            "acceptance_rate": accepts / max(1, proposals),
        }


class StereoMatchingWorkload(Workload):
    """The paper's Stereo Matching application bound to the simulator.

    Instruction budget calibrated so the uncapped simulated run matches
    Table I: "Three-layer wedding cake", 1 m 31 s at ~153 W.
    """

    #: Full-scale image + cost-volume footprint (bytes): fits the 20 MB
    #: L3 but not half of it — which is why quarter-way L3 gating makes
    #: its L3 misses jump while SIRE's stay flat.
    IMAGE_FOOTPRINT = 16 * 1024 * 1024
    #: Mid-level tile (cost rows, disparity neighbourhood): L2-resident
    #: at full associativity, thrashing at half ways.
    TILE_FOOTPRINT = 192 * 1024
    #: Hot accumulators and RNG state: L1-resident.
    HOT_FOOTPRINT = 20 * 1024

    def __init__(self) -> None:
        super().__init__(
            WorkloadSpec(
                name="StereoMatching",
                total_instructions=2.63e11,
                loads_stores_per_instruction=0.38,
                ifetch_per_instruction=0.22,
                description=(
                    "stereo disparity estimation by Metropolis simulated "
                    "annealing on a three-layer wedding-cake scene"
                ),
            )
        )

    def build_slice(
        self, rng: np.random.Generator, n_data_accesses: int
    ) -> TraceSlice:
        """Cache-resident composite trace (see module docstring).

        Mix (by access count): hot accumulators; an L2-resident tile
        accessed randomly; random window bursts over the full image
        footprint.  Weights chosen so the baseline per-instruction miss
        rates land near Table II's A0 row.
        """
        if n_data_accesses < 1000:
            raise WorkloadError("slice too short to be representative")
        # Weights: 97 hot : 2 L2-tile : 1 image-window.  The tile share
        # sets the (L2-served) L1 miss rate; the window share sets the
        # much smaller L2/L3 miss rates — matching Table II's A0 row
        # where L2 misses are ~4 % of L1 misses.
        total_w = 100
        n_hot = n_data_accesses * 97 // total_w
        n_tile = n_data_accesses * 2 // total_w
        n_win = n_data_accesses - n_hot - n_tile
        hot = random_trace(self.HOT_FOOTPRINT, n_hot, rng, element_bytes=8, base=0)
        tile = random_trace(
            self.TILE_FOOTPRINT, n_tile, rng, element_bytes=4, base=1 << 28
        )
        win = windowed_random_trace(
            self.IMAGE_FOOTPRINT,
            n_win,
            rng,
            window_bytes=128,
            burst=128,
            row_bytes=4096,
            window_rows=4,
            element_bytes=4,
            base=1 << 30,
        )
        data = interleave(hot, tile, win, weights=(97, 2, 1))
        # Seed the resident footprint: image lines into L3, tile into
        # L2 — a sampled slice cannot warm 12 MB organically.
        preload = np.concatenate(
            [
                streaming_trace(
                    self.IMAGE_FOOTPRINT,
                    self.IMAGE_FOOTPRINT // 64,
                    element_bytes=64,
                    base=1 << 30,
                ),
                streaming_trace(
                    self.TILE_FOOTPRINT,
                    self.TILE_FOOTPRINT // 64,
                    element_bytes=64,
                    base=1 << 28,
                ),
            ]
        )
        instructions = self.slice_instructions(len(data))
        ifetch = loop_ifetch_trace(
            self.ifetches_for(instructions),
            rng,
            hot_pages=26,
            cold_pages=260,
            excursion_probability=3e-5,
        )
        return TraceSlice(
            data_addresses=data,
            ifetch_addresses=ifetch,
            instructions=instructions,
            warmup_fraction=0.25,
            preload_addresses=preload,
        )

    def run_reference(self, scale: float = 1.0, seed: int = 0) -> dict:
        """Run the real matcher at a reduced scale; returns stats.

        The result dict includes the estimated disparity, ground truth,
        and the fraction of pixels within one disparity level of truth.
        """
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        rng = np.random.default_rng(seed)
        h = max(24, int(48 * scale))
        w = max(32, int(64 * scale))
        truth = wedding_cake_disparity(h, w, layer_disparities=(2, 5, 8, 11))
        left, right = render_stereo_pair(truth, rng, noise_sigma=0.005)
        matcher = StereoMatcher(left, right, max_disparity=12, window=5)
        # Temperatures scaled to the data-term magnitude (SSD of unit
        # images ~ 1e-2); seed from per-pixel winner-take-all so the
        # annealer refines rather than searches from scratch.
        wta = np.zeros((h, w), dtype=np.int32)
        for y in range(h):
            for x in range(w):
                costs = [
                    matcher.data_cost(y, x, d)
                    for d in range(matcher.max_disparity + 1)
                ]
                wta[y, x] = int(np.argmin(costs))
        schedule = AnnealingSchedule(
            t_initial=0.02, t_final=0.001, cooling=0.8, sweeps_per_temperature=2
        )
        disparity, stats = matcher.solve(schedule, rng, initial=wta)
        err = np.abs(disparity.astype(np.float64) - truth)
        stats.update(
            {
                "disparity": disparity,
                "truth": truth,
                "within_one": float(np.mean(err <= 1.0)),
                "mean_abs_error": float(err.mean()),
            }
        )
        return stats
