"""Unpredictable (bursty) workloads — the paper's future work #3.

Section V: "(3) experiment using unpredictable workloads."  Section
IV-C frames why: "Power capping is best used when the workload is
unpredictable in terms of its power consumption" — a fielded platform's
power *budget* must hold even when the payload's demand spikes.

A :class:`BurstyWorkload` is a stochastic phase machine: it alternates
idle phases with bursts of an underlying application (any
:class:`~repro.workloads.base.Workload`), with exponentially
distributed phase durations.  :class:`repro.core.phased.PhasedRunner`
executes it against the simulated node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from .base import Workload

__all__ = ["PhaseSpec", "BurstyWorkload", "PhaseInterval"]


@dataclass(frozen=True)
class PhaseSpec:
    """One phase type of a bursty workload.

    ``workload=None`` means the core idles (parked in a deep C-state);
    otherwise the named application runs flat out for the phase.
    """

    name: str
    workload: Optional[Workload]
    mean_duration_s: float
    #: Relative likelihood of entering this phase next.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_duration_s <= 0:
            raise WorkloadError(f"phase {self.name}: duration must be positive")
        if self.weight <= 0:
            raise WorkloadError(f"phase {self.name}: weight must be positive")


@dataclass(frozen=True)
class PhaseInterval:
    """One realised interval of the phase schedule."""

    name: str
    workload: Optional[Workload]
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def is_idle(self) -> bool:
        return self.workload is None


class BurstyWorkload:
    """A stochastic alternation of phases.

    The schedule is drawn up-front for a given horizon so capped and
    uncapped runs see *exactly the same* demand process — the right
    comparison for a budget-holding study.
    """

    def __init__(self, phases: Sequence[PhaseSpec], name: str = "bursty") -> None:
        if not phases:
            raise WorkloadError("need at least one phase")
        if not any(p.workload is not None for p in phases):
            raise WorkloadError("need at least one non-idle phase")
        self.name = name
        self._phases = list(phases)

    @property
    def phases(self) -> List[PhaseSpec]:
        """The phase types."""
        return list(self._phases)

    def schedule(
        self, horizon_s: float, rng: np.random.Generator
    ) -> List[PhaseInterval]:
        """Draw a phase schedule covering ``[0, horizon_s)``.

        Consecutive phases are sampled by weight (never repeating the
        same phase twice in a row when alternatives exist) with
        exponential durations; the last interval is truncated at the
        horizon.
        """
        if horizon_s <= 0:
            raise WorkloadError("horizon must be positive")
        weights = np.array([p.weight for p in self._phases], dtype=float)
        intervals: List[PhaseInterval] = []
        t = 0.0
        previous_idx: int | None = None
        while t < horizon_s:
            w = weights.copy()
            if previous_idx is not None and len(self._phases) > 1:
                w[previous_idx] = 0.0
            idx = int(rng.choice(len(self._phases), p=w / w.sum()))
            spec = self._phases[idx]
            duration = float(rng.exponential(spec.mean_duration_s))
            duration = min(max(duration, 1e-3), horizon_s - t)
            intervals.append(
                PhaseInterval(
                    name=spec.name,
                    workload=spec.workload,
                    start_s=t,
                    duration_s=duration,
                )
            )
            t += duration
            previous_idx = idx
        return intervals

    def busy_fraction(self, intervals: Sequence[PhaseInterval]) -> float:
        """Fraction of a realised schedule spent in non-idle phases."""
        total = sum(i.duration_s for i in intervals)
        busy = sum(i.duration_s for i in intervals if not i.is_idle)
        return busy / total if total else 0.0
