"""The Workload abstraction binding applications to the simulator.

A :class:`Workload` answers three questions for the runner:

1. *How big is the job?* — ``spec.total_instructions`` (calibrated so
   the uncapped run matches the paper's Table I baselines).
2. *What does its memory behaviour look like?* — :meth:`build_slice`
   returns a bounded, representative :class:`~repro.trace.TraceSlice`
   whose steady-state miss rates stand in for the whole run.
3. *What does it do?* — :meth:`run_reference` executes the real
   algorithm (at a caller-chosen scale) so examples and tests can
   check numerical behaviour, not just simulated timing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..trace.events import TraceSlice

__all__ = ["WorkloadSpec", "Workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Static facts about a workload's full-scale run."""

    name: str
    #: Dynamic committed instructions of the full run.
    total_instructions: float
    #: Loads + stores per instruction (drives the data stream density).
    loads_stores_per_instruction: float
    #: Instruction-fetch events per instruction fed to the L1I/iTLB
    #: model (sequential fetch within a line is free, so < 1).
    ifetch_per_instruction: float
    #: Short description for reports.
    description: str = ""

    def __post_init__(self) -> None:
        if self.total_instructions <= 0:
            raise WorkloadError("total_instructions must be positive")
        if not 0 < self.loads_stores_per_instruction < 4:
            raise WorkloadError("loads_stores_per_instruction out of range")
        if not 0 < self.ifetch_per_instruction <= 1:
            raise WorkloadError("ifetch_per_instruction must be in (0, 1]")


class Workload(ABC):
    """An application bound to the node simulator."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> WorkloadSpec:
        """The workload's static facts."""
        return self._spec

    @property
    def name(self) -> str:
        """Short name used in tables and reports."""
        return self._spec.name

    @abstractmethod
    def build_slice(self, rng: np.random.Generator, n_data_accesses: int) -> TraceSlice:
        """A representative trace slice with ``n_data_accesses`` accesses.

        The slice's ``instructions`` must be consistent with
        ``spec.loads_stores_per_instruction`` so rate scaling is exact.
        """

    @abstractmethod
    def run_reference(self, scale: float = 1.0, seed: int = 0):
        """Run the real algorithm at ``scale`` (1.0 ~ paper-like input).

        Returns an application-specific result object.
        """

    def slice_instructions(self, n_data_accesses: int) -> float:
        """Instructions represented by a slice of given access count."""
        return n_data_accesses / self._spec.loads_stores_per_instruction

    def ifetches_for(self, instructions: float) -> int:
        """Instruction-fetch events to generate for a slice."""
        return max(1, int(instructions * self._spec.ifetch_per_instruction))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._spec.name!r})"
