"""Mechanism-isolating microbenchmark probes.

The paper's second future-work item: "determine, using microbenchmarks,
what techniques other than DVFS are being used to manage power
consumption" (Section V).  This module provides the probe kernels; the
inference logic that interprets them lives in
:mod:`repro.core.detector`.

Probes observe the machine only through
:class:`MachineUnderTest` — wall-clock timings of access traces,
compute loops, and the cycle counter — exactly the interfaces a real
user-space microbenchmark has.  They never read the gating state
directly, so the detector genuinely *infers* the active mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..arch.core import CoreTimingModel
from ..config import NodeConfig, sandy_bridge_config
from ..errors import WorkloadError
from ..mem.hierarchy import MemoryHierarchy
from ..mem.latency import AccessCosts
from ..mem.reconfig import GatingState, ReconfigEngine
from ..trace.synthetic import loop_ifetch_trace, strided_trace

__all__ = [
    "MachineUnderTest",
    "MsrSnapshot",
    "compute_probe",
    "cache_capacity_probe",
    "itlb_reach_probe",
    "dram_latency_probe",
]

#: The invariant-TSC rate (the P0 base clock).
TSC_HZ = 2.701e9


@dataclass(frozen=True)
class MsrSnapshot:
    """TSC/APERF/MPERF-style counters, as user space can read them.

    - ``tsc``   ticks at the invariant rate whenever wall time passes;
    - ``mperf`` ticks at the invariant rate only while the core is
      unhalted (clock modulation halts it);
    - ``aperf`` ticks at the *actual* core frequency while unhalted.

    Hence ``aperf/mperf`` exposes DVFS and ``mperf/tsc`` exposes the
    clock-modulation duty — exactly how real frequency tools work.
    """

    tsc: float
    aperf: float
    mperf: float

    def delta(self, earlier: "MsrSnapshot") -> "MsrSnapshot":
        """Counter deltas since an earlier snapshot."""
        return MsrSnapshot(
            tsc=self.tsc - earlier.tsc,
            aperf=self.aperf - earlier.aperf,
            mperf=self.mperf - earlier.mperf,
        )


class MachineUnderTest:
    """The observable surface of a (possibly power-managed) machine.

    Wraps a node configuration plus the *hidden* operating state (gating,
    frequency, duty).  Probes may call the timing methods and read the
    cycle counter; they may not inspect the hidden state.
    """

    def __init__(
        self,
        config: NodeConfig | None = None,
        gating: GatingState | None = None,
        freq_hz: float = 2.701e9,
        duty: float = 1.0,
    ) -> None:
        if not 0.0 < duty <= 1.0:
            raise WorkloadError("duty must be in (0, 1]")
        self._config = config or sandy_bridge_config()
        self._gating = gating or GatingState.ungated()
        self._freq_hz = float(freq_hz)
        self._duty = float(duty)
        self._core = CoreTimingModel(self._config.base_cpi)
        self._costs = AccessCosts.from_config(self._config, self._gating)
        self._cycles = 0.0
        self._tsc = 0.0
        self._aperf = 0.0
        self._mperf = 0.0

    @property
    def config(self) -> NodeConfig:
        """The *nominal* configuration (public, like a datasheet)."""
        return self._config

    @property
    def cycle_counter(self) -> float:
        """Actual core cycles (APERF-like): advances only unhalted."""
        return self._cycles

    def read_msr(self) -> MsrSnapshot:
        """Read the TSC/APERF/MPERF counter trio."""
        return MsrSnapshot(tsc=self._tsc, aperf=self._aperf, mperf=self._mperf)

    def _account(self, busy_s: float) -> float:
        """Advance the counters for a busy phase; returns wall time."""
        wall = busy_s / self._duty
        self._cycles += busy_s * self._freq_hz
        self._tsc += wall * TSC_HZ
        self._aperf += busy_s * self._freq_hz
        self._mperf += busy_s * TSC_HZ
        return wall

    def _fresh_hierarchy(self) -> MemoryHierarchy:
        hierarchy = MemoryHierarchy(self._config)
        ReconfigEngine(self._config).apply(hierarchy, self._gating)
        return hierarchy

    def time_data_trace(
        self, addresses: np.ndarray, warm_fraction: float = 0.5
    ) -> float:
        """Wall seconds to execute a data-access trace (measured part).

        The leading ``warm_fraction`` warms the caches and is excluded.
        Each access carries one instruction of loop overhead, as the
        real pointer-chase kernels do.
        """
        hierarchy = self._fresh_hierarchy()
        cut = int(len(addresses) * warm_fraction)
        hierarchy.simulate_data_trace(addresses[:cut])
        counts = hierarchy.simulate_data_trace(addresses[cut:])
        access_ns = self._costs.average_access_ns(
            counts.data_accesses,
            counts.l1d_misses,
            counts.l2_misses,
            counts.l3_misses,
            tlb_misses=counts.dtlb_misses,
        )
        n = counts.data_accesses
        busy_s = n * (
            self._config.base_cpi / self._freq_hz + access_ns * 1e-9
        )
        return self._account(busy_s)

    def time_ifetch_trace(self, addresses: np.ndarray) -> float:
        """Wall seconds for an instruction-fetch trace (iTLB probe)."""
        hierarchy = self._fresh_hierarchy()
        cut = len(addresses) // 2
        hierarchy.simulate_ifetch_trace(addresses[:cut])
        counts = hierarchy.simulate_ifetch_trace(addresses[cut:])
        access_ns = self._costs.average_access_ns(
            counts.ifetches,
            counts.l1i_misses,
            counts.l2_misses,
            counts.l3_misses,
            tlb_misses=counts.itlb_misses,
        )
        n = counts.ifetches
        busy_s = n * (
            self._config.base_cpi / self._freq_hz + access_ns * 1e-9
        )
        return self._account(busy_s)

    def time_compute(self, n_instructions: int) -> float:
        """Wall seconds for a pure-compute dependent chain."""
        if n_instructions <= 0:
            raise WorkloadError("need a positive instruction count")
        busy_s = n_instructions * self._config.base_cpi / self._freq_hz
        return self._account(busy_s)


# ---------------------------------------------------------------------------
# Probe kernels
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ComputeProbeResult:
    seconds_per_instruction: float
    effective_freq_hz: float
    duty: float

    @property
    def effective_rate_hz(self) -> float:
        """Instruction rate including throttling (f x duty / CPI)."""
        return 1.0 / self.seconds_per_instruction


def compute_probe(machine: MachineUnderTest, n: int = 2_000_000) -> _ComputeProbeResult:
    """Measure the compute path via the TSC/APERF/MPERF trio.

    ``aperf/mperf`` scales the invariant clock to the *actual* DVFS
    frequency (immune to clock modulation); ``mperf/tsc`` is the
    unhalted fraction, i.e. the clock-modulation duty.
    """
    before = machine.read_msr()
    wall = machine.time_compute(n)
    d = machine.read_msr().delta(before)
    freq = d.aperf / d.mperf * TSC_HZ if d.mperf else TSC_HZ
    duty = min(1.0, d.mperf / d.tsc) if d.tsc else 1.0
    return _ComputeProbeResult(
        seconds_per_instruction=wall / n,
        effective_freq_hz=freq,
        duty=duty,
    )


def cache_capacity_probe(
    machine: MachineUnderTest,
    footprints_bytes: Sequence[int],
    rng: np.random.Generator,
    max_accesses: int = 1_500_000,
) -> Dict[int, float]:
    """Average wall nanoseconds per access for a cyclic line-granular
    sweep of each footprint.

    Under LRU a cyclic sweep is all-hits while the footprint fits the
    (effective) capacity and all-misses once it exceeds it, so the
    capacity edge is crisp; its position against the datasheet value
    exposes way gating.  (``rng`` is accepted for interface symmetry.)
    """
    out: Dict[int, float] = {}
    for fp in footprints_bytes:
        lines = max(1, fp // 64)
        accesses = min(max_accesses, max(4000, 3 * lines))
        trace = strided_trace(fp, 64, accesses, base=1 << 33)
        wall = machine.time_data_trace(trace)
        measured = accesses - accesses // 2
        overhead = machine.time_compute(measured) / measured
        out[fp] = (wall / measured - overhead) * 1e9
    return out


def itlb_reach_probe(
    machine: MachineUnderTest,
    page_counts: Sequence[int],
    rng: np.random.Generator,
    fetches: int = 30_000,
) -> Dict[int, float]:
    """Wall nanoseconds per fetch for a code loop spanning N pages.

    The iTLB reach edge appears as a jump between consecutive page
    counts; against the 128-entry datasheet value this exposes iTLB
    entry gating."""
    out: Dict[int, float] = {}
    for pages in page_counts:
        trace = loop_ifetch_trace(
            fetches, rng, hot_pages=pages, excursion_probability=0.0
        )
        wall = machine.time_ifetch_trace(trace)
        overhead = machine.time_compute(fetches // 2) / (fetches // 2)
        out[pages] = (wall / (fetches // 2) - overhead) * 1e9
    return out


def dram_latency_probe(
    machine: MachineUnderTest,
    rng: np.random.Generator,
    footprint_bytes: int = 64 * 1024 * 1024,
    accesses: int = 120_000,
) -> float:
    """Average wall nanoseconds of a DRAM-resident line-stride access.

    A cyclic 64 B-stride sweep far beyond the L3: every access misses
    every cache level while dTLB walks amortise across the 64 lines of
    each page — the classic ``lat_mem_rd`` setup.  (``rng`` accepted
    for interface symmetry.)
    """
    trace = strided_trace(footprint_bytes, 64, accesses, base=1 << 34)
    wall = machine.time_data_trace(trace)
    measured = accesses - accesses // 2
    overhead = machine.time_compute(measured) / measured
    return (wall / measured - overhead) * 1e9
