"""The Hennessy-Patterson stride microbenchmark (Figures 3 and 4).

"a program that strides through memory invoking different levels of the
hierarchy ... includes a nested loop that reads and writes memory at
different strides and cache sizes.  The results ... can be used to
identify the configuration of the memory hierarchy ... as well as the
access times of the various levels" (Sections I and III).

:class:`StrideBenchmark` sweeps (array size, stride) cells:

- :meth:`run` executes against a fixed gating state (Figure 3's
  uncapped run uses the ungated default) and reports the average access
  time per cell, computed from simulated miss counts and the level
  service costs;
- :meth:`run_capped` executes the same sweep while a live
  :class:`~repro.bmc.controller.CapController` regulates the node at a
  cap.  Cells then see whatever gating/duty the controller happens to
  be applying, reproducing Figure 4's inflated and erratic access times
  ("due to the dynamic nature of how the power cap is enforced, the
  average access time behaviors are not consistent with what we would
  expect").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..arch.node import Node
from ..bmc.controller import CapController
from ..bmc.sensors import PowerSensor
from ..config import NodeConfig, sandy_bridge_config
from ..errors import WorkloadError
from ..mem.hierarchy import MemoryHierarchy
from ..mem.latency import AccessCosts
from ..mem.reconfig import GatingState, ReconfigEngine
from ..trace.synthetic import strided_trace
from ..units import KIB

__all__ = ["StrideBenchmark", "StrideResult"]

#: Default array sizes: 4K .. 64M, as in the paper's figures.
DEFAULT_SIZES = tuple(4 * KIB * 2**i for i in range(15))  # 4K .. 64M
#: Default strides: 8B .. 32M.
DEFAULT_STRIDES = tuple(8 * 2**i for i in range(23))  # 8B .. 32M


@dataclass(frozen=True)
class StrideResult:
    """Average access time per (size, stride) cell.

    ``access_time_ns[i, j]`` is NaN where ``strides[j] > sizes[i] / 2``
    (the cell would touch too few locations to mean anything, matching
    the published plots).
    """

    sizes: Tuple[int, ...]
    strides: Tuple[int, ...]
    access_time_ns: np.ndarray

    def series_for_size(self, size: int) -> Dict[int, float]:
        """One plotted line: stride -> access time for a given size."""
        i = self.sizes.index(size)
        return {
            s: float(self.access_time_ns[i, j])
            for j, s in enumerate(self.strides)
            if np.isfinite(self.access_time_ns[i, j])
        }

    def plateau_ns(self, size: int) -> float:
        """The max access time across strides for a size (its plateau)."""
        series = self.series_for_size(size)
        if not series:
            raise WorkloadError(f"no valid cells for size {size}")
        return max(series.values())


class StrideBenchmark:
    """The nested size x stride sweep."""

    def __init__(
        self,
        sizes: Sequence[int] = DEFAULT_SIZES,
        strides: Sequence[int] = DEFAULT_STRIDES,
        accesses_per_cell: int = 6000,
        node_config: NodeConfig | None = None,
    ) -> None:
        if not sizes or not strides:
            raise WorkloadError("need at least one size and one stride")
        self.sizes = tuple(int(s) for s in sizes)
        self.strides = tuple(int(s) for s in strides)
        if accesses_per_cell < 100:
            raise WorkloadError("accesses_per_cell too small to measure anything")
        self.accesses_per_cell = int(accesses_per_cell)
        self.config = node_config or sandy_bridge_config()

    # ------------------------------------------------------------------
    # Cell measurement
    # ------------------------------------------------------------------

    def _measure_counts(self, size: int, stride: int, gating: GatingState):
        """Simulated miss counts for one cell under a gating.

        A fresh hierarchy per cell (the real benchmark's arrays are
        fresh allocations); the first pass over the array warms it and
        is excluded from the counts.  Counts depend only on the
        miss-relevant part of the gating (``config_key``), never on its
        latency multipliers.
        """
        hierarchy = MemoryHierarchy(self.config)
        ReconfigEngine(self.config).apply(hierarchy, gating)
        slots = max(1, size // stride)
        warm = strided_trace(size, stride, slots, base=1 << 32)
        measured = strided_trace(size, stride, self.accesses_per_cell, base=1 << 32)
        hierarchy.simulate_data_trace(warm)
        return hierarchy.simulate_data_trace(measured)

    def _measure_cell(
        self, size: int, stride: int, gating: GatingState
    ) -> Tuple[float, float]:
        """(avg access ns, L3 miss rate) for one cell under a gating."""
        counts = self._measure_counts(size, stride, gating)
        costs = AccessCosts.from_config(self.config, gating)
        avg_ns = costs.average_access_ns(
            counts.data_accesses,
            counts.l1d_misses,
            counts.l2_misses,
            counts.l3_misses,
            tlb_misses=counts.dtlb_misses,
        )
        l3_rate = counts.l3_misses / counts.data_accesses
        return avg_ns, l3_rate

    def _valid(self, size: int, stride: int) -> bool:
        return stride <= size // 2

    # ------------------------------------------------------------------
    # Figure 3: fixed gating
    # ------------------------------------------------------------------

    def run(self, gating: GatingState | None = None) -> StrideResult:
        """Sweep all cells under a fixed gating state (Figure 3)."""
        gating = gating or GatingState.ungated()
        grid = np.full((len(self.sizes), len(self.strides)), np.nan)
        for i, size in enumerate(self.sizes):
            for j, stride in enumerate(self.strides):
                if self._valid(size, stride):
                    grid[i, j], _ = self._measure_cell(size, stride, gating)
        return StrideResult(
            sizes=self.sizes, strides=self.strides, access_time_ns=grid
        )

    # ------------------------------------------------------------------
    # Figure 4: live cap enforcement
    # ------------------------------------------------------------------

    def run_capped(
        self,
        cap_w: float,
        rng: np.random.Generator,
        cell_duration_s: float = 1.5,
        settle_s: float = 20.0,
    ) -> StrideResult:
        """Sweep all cells while a BMC enforces ``cap_w`` (Figure 4).

        The controller runs in simulated time across the whole sweep;
        each cell's accesses are priced with whatever gating and duty
        were in force while it ran, so neighbouring cells can land in
        different machine configurations — the paper's "unexpected
        behavior".
        """
        node = Node(self.config)
        sensor = PowerSensor(rng)
        controller = CapController(node, sensor)
        controller.set_cap(cap_w)
        quantum = self.config.bmc.control_quantum_s
        model = node.power_model

        # Cache per-cell miss counts by miss-relevant gating key; price
        # them with the *exact* gating's costs on every use, since two
        # gatings can share miss behaviour but differ in latency.
        cell_cache: Dict[Tuple[int, int, tuple], object] = {}

        def measure(size: int, stride: int, gating: GatingState) -> Tuple[float, float]:
            key = (size, stride, gating.config_key())
            if key not in cell_cache:
                cell_cache[key] = self._measure_counts(size, stride, gating)
            counts = cell_cache[key]
            costs = AccessCosts.from_config(self.config, gating)
            avg_ns = costs.average_access_ns(
                counts.data_accesses,
                counts.l1d_misses,
                counts.l2_misses,
                counts.l3_misses,
                tlb_misses=counts.dtlb_misses,
            )
            return avg_ns, counts.l3_misses / counts.data_accesses

        # Let the controller settle against a representative cell first.
        gating = GatingState.ungated()
        duty = 1.0
        cmd = None
        power = node.power_w()
        for _ in range(int(settle_s / quantum)):
            cmd = controller.update(power, activity=1.0, traffic_bps=2e8)
            gating, duty = cmd.gating, cmd.duty
            alpha = cmd.alpha
            p_fast = model.power_of_pstate(
                cmd.pstate_fast,
                duty=duty,
                gating_saving_w=cmd.gating_saving_w,
                dram_traffic_bps=2e8,
                temperature_c=node.thermal.temperature_c,
            )
            p_slow = model.power_of_pstate(
                cmd.pstate_slow,
                duty=duty,
                gating_saving_w=cmd.gating_saving_w,
                dram_traffic_bps=2e8,
                temperature_c=node.thermal.temperature_c,
            )
            power = alpha * p_fast + (1.0 - alpha) * p_slow
            node.thermal.step(power, quantum)

        grid = np.full((len(self.sizes), len(self.strides)), np.nan)
        base_cpi_ns = 0.0  # pure memory kernel: time is the access time
        for i, size in enumerate(self.sizes):
            for j, stride in enumerate(self.strides):
                if not self._valid(size, stride):
                    continue
                elapsed = 0.0
                weighted_ns = 0.0
                while elapsed < cell_duration_s:
                    cell_ns, l3_rate = measure(size, stride, gating)
                    wall_ns_per_access = (base_cpi_ns + cell_ns) / max(
                        duty, 1e-6
                    )
                    rate = 1e9 / wall_ns_per_access
                    traffic = l3_rate * rate * self.config.l3.line_bytes
                    activity = min(
                        1.0, 2.0 / max(cell_ns, 2.0)
                    )  # stall-bound cells switch less logic
                    cmd = controller.update(
                        power, activity=activity, traffic_bps=traffic
                    )
                    gating, duty = cmd.gating, cmd.duty
                    p_fast = model.power_of_pstate(
                        cmd.pstate_fast,
                        duty=duty,
                        activity=activity,
                        gating_saving_w=cmd.gating_saving_w,
                        dram_traffic_bps=traffic,
                        temperature_c=node.thermal.temperature_c,
                    )
                    p_slow = model.power_of_pstate(
                        cmd.pstate_slow,
                        duty=duty,
                        activity=activity,
                        gating_saving_w=cmd.gating_saving_w,
                        dram_traffic_bps=traffic,
                        temperature_c=node.thermal.temperature_c,
                    )
                    power = cmd.alpha * p_fast + (1.0 - cmd.alpha) * p_slow
                    node.thermal.step(power, quantum)
                    weighted_ns += wall_ns_per_access * quantum
                    elapsed += quantum
                grid[i, j] = weighted_ns / elapsed
        return StrideResult(
            sizes=self.sizes, strides=self.strides, access_time_ns=grid
        )
