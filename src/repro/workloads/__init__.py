"""The paper's workloads, implemented for real.

Two applications "of interest to the U.S. Army ... executed on fielded
computing platforms" (Section III):

- **SIRE/RSM** — ultra-wideband impulse-radar SAR image formation by
  back-projection with iterative noise-removal (:mod:`.sar`, over
  synthetic returns from :mod:`.radar`);
- **Stereo Matching** — disparity estimation by simulated annealing
  over a synthetic three-layer wedding-cake scene (:mod:`.stereo`,
  scene in :mod:`.wedding_cake`).

Plus the Hennessy-Patterson **stride microbenchmark** the paper uses to
probe the memory hierarchy (:mod:`.stride`).

Each application exposes (a) its real numerical algorithm, runnable at
any scale, and (b) a :class:`~repro.workloads.base.Workload` binding
that feeds the node simulator a representative access trace scaled to
the paper's full instruction budgets.
"""

from .base import Workload, WorkloadSpec
from .radar import SireScene, generate_returns
from .sar import backproject, rsm_denoise, SarImageFormation, SireRsmWorkload
from .wedding_cake import wedding_cake_disparity, render_stereo_pair
from .stereo import (
    StereoMatcher,
    AnnealingSchedule,
    StereoMatchingWorkload,
)
from .stride import StrideBenchmark, StrideResult
from .bursty import BurstyWorkload, PhaseSpec, PhaseInterval
from .microbench import (
    MachineUnderTest,
    compute_probe,
    cache_capacity_probe,
    itlb_reach_probe,
    dram_latency_probe,
)

import dataclasses
import math

from ..errors import ConfigError

#: CLI/service names for the paper's two applications.
WORKLOAD_REGISTRY = {
    "stereo": StereoMatchingWorkload,
    "sire": SireRsmWorkload,
}


def make_workload(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a registered workload with a scaled instruction budget.

    ``scale`` multiplies the paper-calibrated committed-instruction
    budget (the shape of every result is scale-invariant; DESIGN.md §5).
    Rejects unknown names and non-finite / non-positive scales with a
    :class:`~repro.errors.ConfigError` instead of silently producing a
    workload whose run loop never terminates (scale <= 0) or explodes
    (scale = inf/nan).
    """
    try:
        cls = WORKLOAD_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOAD_REGISTRY)}"
        ) from None
    try:
        scale = float(scale)
    except (TypeError, ValueError):
        raise ConfigError(f"workload scale must be a number, got {scale!r}")
    if not math.isfinite(scale) or scale <= 0:
        raise ConfigError(
            f"workload scale must be finite and > 0, got {scale!r}"
        )
    workload = cls()
    if scale != 1.0:
        workload._spec = dataclasses.replace(
            workload.spec,
            total_instructions=workload.spec.total_instructions * scale,
        )
    return workload


__all__ = [
    "Workload",
    "WorkloadSpec",
    "WORKLOAD_REGISTRY",
    "make_workload",
    "SireScene",
    "generate_returns",
    "backproject",
    "rsm_denoise",
    "SarImageFormation",
    "SireRsmWorkload",
    "wedding_cake_disparity",
    "render_stereo_pair",
    "StereoMatcher",
    "AnnealingSchedule",
    "StereoMatchingWorkload",
    "StrideBenchmark",
    "StrideResult",
    "BurstyWorkload",
    "PhaseSpec",
    "PhaseInterval",
    "MachineUnderTest",
    "compute_probe",
    "cache_capacity_probe",
    "itlb_reach_probe",
    "dram_latency_probe",
]
