"""The "three-layer wedding cake" stereo scene.

The paper's Stereo Matching input is a synthetic "three-layer wedding
cake" (Table I) — the classic stereo test object: concentric stacked
discs at three heights, so the true disparity field is piecewise
constant with circular discontinuities.  We generate the disparity
ground truth and render a textured stereo pair from it by horizontal
warping, which is all a disparity-estimation algorithm can see anyway.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["wedding_cake_disparity", "render_stereo_pair"]


def wedding_cake_disparity(
    height: int,
    width: int,
    layer_disparities: tuple[float, float, float, float] = (2.0, 6.0, 10.0, 14.0),
    radii_fractions: tuple[float, float, float] = (0.45, 0.30, 0.15),
) -> np.ndarray:
    """Ground-truth disparity of a three-layer wedding cake.

    ``layer_disparities`` are (ground, tier1, tier2, tier3); each tier
    is a disc of the corresponding radius fraction centred in the
    image.  Returns a float32 (height, width) disparity map.
    """
    if height < 8 or width < 8:
        raise WorkloadError("scene too small")
    if not all(r1 > r2 for r1, r2 in zip(radii_fractions, radii_fractions[1:])):
        raise WorkloadError("tier radii must strictly decrease")
    yy, xx = np.mgrid[0:height, 0:width]
    cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
    r = np.hypot((yy - cy) / height, (xx - cx) / width)
    disparity = np.full((height, width), layer_disparities[0], dtype=np.float32)
    for tier, frac in enumerate(radii_fractions, start=1):
        disparity[r <= frac] = layer_disparities[tier]
    return disparity


def render_stereo_pair(
    disparity: np.ndarray,
    rng: np.random.Generator,
    texture_octaves: int = 3,
    noise_sigma: float = 0.01,
) -> tuple[np.ndarray, np.ndarray]:
    """Render (left, right) images consistent with a disparity map.

    ``disparity`` is indexed by *left-image* coordinates: a scene point
    seen at ``x`` in the left view appears at ``x - d(x)`` in the right
    view (the rectified-stereo convention the matcher assumes).  The
    right image is the base multi-octave value-noise texture (so
    windows are discriminative) and the left image is synthesised as
    ``left(x) = right(x - d(x))`` with linear interpolation — which
    makes the SSD data term minimal at exactly the ground-truth
    disparity.  Both are float32 in [0, 1] plus sensor noise.
    """
    if disparity.ndim != 2:
        raise WorkloadError("disparity must be 2-D")
    h, w = disparity.shape
    right = np.zeros((h, w), dtype=np.float64)
    for octave in range(texture_octaves):
        step = 2 ** (texture_octaves - octave)
        gh, gw = h // step + 2, w // step + 2
        grid = rng.random((gh, gw))
        # Bilinear upsample of the coarse grid.
        yy = np.arange(h) / step
        xx = np.arange(w) / step
        y0 = yy.astype(np.int64)
        x0 = xx.astype(np.int64)
        fy = (yy - y0)[:, None]
        fx = (xx - x0)[None, :]
        g00 = grid[y0][:, x0]
        g01 = grid[y0][:, x0 + 1]
        g10 = grid[y0 + 1][:, x0]
        g11 = grid[y0 + 1][:, x0 + 1]
        layer = (
            g00 * (1 - fy) * (1 - fx)
            + g01 * (1 - fy) * fx
            + g10 * fy * (1 - fx)
            + g11 * fy * fx
        )
        right += layer / (2**octave)
    right /= right.max()
    # Left view: sample right at x - d(x).
    xs = np.arange(w)[None, :] - disparity
    x0 = np.clip(np.floor(xs).astype(np.int64), 0, w - 2)
    fx = np.clip(xs - x0, 0.0, 1.0)
    rows = np.arange(h)[:, None]
    left = right[rows, x0] * (1 - fx) + right[rows, x0 + 1] * fx
    if noise_sigma > 0:
        left = left + rng.normal(0.0, noise_sigma, left.shape)
        right = right + rng.normal(0.0, noise_sigma, right.shape)
    return left.astype(np.float32), right.astype(np.float32)
