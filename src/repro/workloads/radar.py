"""Synthetic SIRE-like ultra-wideband impulse radar returns.

The paper's SIRE/RSM input is the proprietary ARL "Lam dataset".  We
substitute a synthetic forward model of the same radar: the Synchronous
Impulse Reconstruction (SIRE) radar is an ultra-wideband impulse system
on a moving platform; each aperture position transmits a short pulse
(modelled as a Gaussian monocycle) and records the echo time series
from the scene's scatterers.

The substitution preserves what matters for the study: the image
former's compute structure (per-pixel range interpolation over every
aperture) and its memory behaviour (streaming over a returns matrix far
larger than any cache) are identical for synthetic and real returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["SireScene", "generate_returns", "gaussian_monocycle", "C_M_PER_S"]

#: Propagation speed used by the range equations (m/s).
C_M_PER_S = 2.99792458e8


def gaussian_monocycle(t_s: np.ndarray, center_s: float, sigma_s: float) -> np.ndarray:
    """First derivative of a Gaussian — the canonical UWB impulse."""
    if sigma_s <= 0:
        raise WorkloadError("pulse sigma must be positive")
    x = (t_s - center_s) / sigma_s
    return -x * np.exp(-0.5 * x**2)


@dataclass(frozen=True)
class SireScene:
    """A point-scatterer scene observed by a side-looking platform.

    The platform moves along the x axis at height 0; the imaged swath
    extends in y (down-range).  Positions/extent in metres.
    """

    scatterers_xy: np.ndarray
    reflectivity: np.ndarray
    extent_x_m: float = 30.0
    extent_y_m: float = 30.0
    standoff_y_m: float = 8.0

    def __post_init__(self) -> None:
        if self.scatterers_xy.ndim != 2 or self.scatterers_xy.shape[1] != 2:
            raise WorkloadError("scatterers_xy must be (n, 2)")
        if len(self.reflectivity) != len(self.scatterers_xy):
            raise WorkloadError("one reflectivity per scatterer required")

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        n_scatterers: int = 12,
        extent_x_m: float = 30.0,
        extent_y_m: float = 30.0,
        standoff_y_m: float = 8.0,
    ) -> "SireScene":
        """A random scene with strong, well-separated point targets."""
        if n_scatterers <= 0:
            raise WorkloadError("need at least one scatterer")
        xy = np.column_stack(
            [
                rng.uniform(0.0, extent_x_m, n_scatterers),
                rng.uniform(standoff_y_m, standoff_y_m + extent_y_m, n_scatterers),
            ]
        )
        refl = rng.uniform(0.5, 1.0, n_scatterers)
        return cls(
            scatterers_xy=xy,
            reflectivity=refl,
            extent_x_m=extent_x_m,
            extent_y_m=extent_y_m,
            standoff_y_m=standoff_y_m,
        )


def generate_returns(
    scene: SireScene,
    n_apertures: int = 64,
    n_samples: int = 1024,
    pulse_sigma_s: float = 0.35e-9,
    noise_sigma: float = 0.02,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simulate the radar data cube.

    Returns ``(returns, aperture_x_m, fast_time_s)`` where ``returns``
    is ``(n_apertures, n_samples)`` float32: one echo time series per
    aperture position along the platform track.
    """
    if n_apertures <= 1 or n_samples <= 8:
        raise WorkloadError("returns matrix too small to be meaningful")
    aperture_x = np.linspace(0.0, scene.extent_x_m, n_apertures)
    max_range = np.hypot(
        scene.extent_x_m, scene.standoff_y_m + scene.extent_y_m
    )
    # Two-way travel plus margin sets the fast-time window.
    t_max = 2.0 * max_range / C_M_PER_S * 1.15
    fast_time = np.linspace(0.0, t_max, n_samples)
    returns = np.zeros((n_apertures, n_samples), dtype=np.float64)
    # Vectorised over scatterers and samples per aperture.
    sx = scene.scatterers_xy[:, 0]
    sy = scene.scatterers_xy[:, 1]
    for a, x in enumerate(aperture_x):
        ranges = np.hypot(sx - x, sy)  # (n_scatterers,)
        delays = 2.0 * ranges / C_M_PER_S
        spreading = scene.reflectivity / np.maximum(ranges, 1.0) ** 2
        echo = (
            spreading[:, None]
            * gaussian_monocycle(fast_time[None, :], delays[:, None], pulse_sigma_s)
        ).sum(axis=0)
        returns[a] = echo
    if noise_sigma > 0:
        rng = rng or np.random.default_rng(0)
        returns += rng.normal(0.0, noise_sigma, returns.shape)
    return returns.astype(np.float32), aperture_x, fast_time
