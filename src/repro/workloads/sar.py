"""SIRE/RSM: SAR image formation with recursive sidelobe minimisation.

The real algorithm (Nguyen, ARL-TR-4784): form the image by time-domain
**back-projection** — for every pixel, sum the (interpolated) radar
return at the two-way delay from each aperture position — and suppress
sidelobes with **RSM**: repeat the back-projection over random aperture
subsets and keep the pointwise minimum magnitude.  The RSM loop is the
paper's "iteratively loops through the array elements to remove noise".

Memory behaviour of the full-scale run (what the simulator consumes):
the returns matrix is streamed aperture-by-aperture and is far larger
than the L3, so every pass is compulsory+conflict misses at every cache
level; a small interpolation/accumulator working set stays hot.  This
is exactly the characterisation Section IV-B gives for SIRE/RSM, and it
is why its L1/L2/L3 miss counts stay flat under way gating (Table II)
— a stream misses everywhere regardless of associativity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..trace.events import TraceSlice
from ..trace.sampler import interleave
from ..trace.synthetic import (
    loop_ifetch_trace,
    random_trace,
    streaming_trace,
)
from .base import Workload, WorkloadSpec
from .radar import C_M_PER_S, SireScene, generate_returns

__all__ = ["backproject", "rsm_denoise", "SarImageFormation", "SireRsmWorkload"]


def backproject(
    returns: np.ndarray,
    aperture_x_m: np.ndarray,
    fast_time_s: np.ndarray,
    image_shape: tuple[int, int],
    extent_x_m: float,
    extent_y_m: float,
    standoff_y_m: float,
    aperture_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Time-domain back-projection image formation.

    Returns an ``image_shape`` float64 image over the ground plane
    ``[0, extent_x] x [standoff, standoff + extent_y]``.  Linear
    interpolation in fast time; apertures can be masked out (RSM).
    """
    if returns.ndim != 2:
        raise WorkloadError("returns must be (apertures, samples)")
    n_apertures, n_samples = returns.shape
    if len(aperture_x_m) != n_apertures or len(fast_time_s) != n_samples:
        raise WorkloadError("axis lengths do not match the returns matrix")
    ny, nx = image_shape
    px = np.linspace(0.0, extent_x_m, nx)
    py = np.linspace(standoff_y_m, standoff_y_m + extent_y_m, ny)
    gx, gy = np.meshgrid(px, py)  # (ny, nx)
    image = np.zeros(image_shape, dtype=np.float64)
    dt = fast_time_s[1] - fast_time_s[0]
    mask = (
        np.ones(n_apertures, dtype=bool) if aperture_mask is None else aperture_mask
    )
    for a in range(n_apertures):
        if not mask[a]:
            continue
        ranges = np.hypot(gx - aperture_x_m[a], gy)
        delays = 2.0 * ranges / C_M_PER_S
        pos = delays / dt
        i0 = np.clip(pos.astype(np.int64), 0, n_samples - 2)
        frac = np.clip(pos - i0, 0.0, 1.0)
        trace = returns[a]
        image += trace[i0] * (1.0 - frac) + trace[i0 + 1] * frac
    return image


def rsm_denoise(
    returns: np.ndarray,
    aperture_x_m: np.ndarray,
    fast_time_s: np.ndarray,
    image_shape: tuple[int, int],
    extent_x_m: float,
    extent_y_m: float,
    standoff_y_m: float,
    iterations: int = 8,
    keep_fraction: float = 0.8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Recursive sidelobe minimisation.

    Each iteration back-projects a random ``keep_fraction`` of the
    apertures; the running image is the pointwise minimum magnitude.
    Sidelobes (which move when the aperture subset changes) are
    suppressed; true scatterer responses (which do not) survive.
    """
    if iterations < 1:
        raise WorkloadError("need at least one RSM iteration")
    if not 0.0 < keep_fraction <= 1.0:
        raise WorkloadError("keep_fraction must be in (0, 1]")
    rng = rng or np.random.default_rng(0)
    n_apertures = returns.shape[0]
    keep = max(2, int(round(n_apertures * keep_fraction)))
    minimum: np.ndarray | None = None
    for _ in range(iterations):
        mask = np.zeros(n_apertures, dtype=bool)
        mask[rng.choice(n_apertures, size=keep, replace=False)] = True
        img = np.abs(
            backproject(
                returns,
                aperture_x_m,
                fast_time_s,
                image_shape,
                extent_x_m,
                extent_y_m,
                standoff_y_m,
                aperture_mask=mask,
            )
        )
        minimum = img if minimum is None else np.minimum(minimum, img)
    assert minimum is not None
    return minimum


@dataclass(frozen=True)
class SarImageFormation:
    """Result of a full reference run."""

    image: np.ndarray
    scene: SireScene
    peak_to_background_db: float


class SireRsmWorkload(Workload):
    """The paper's SIRE/RSM application bound to the simulator.

    Instruction budget calibrated so the uncapped simulated run matches
    Table I: "Lam Dataset (large image)", 6 m 17 s at ~157 W.
    """

    #: Streamed returns footprint of the full-scale run (bytes).  Far
    #: larger than the 20 MB L3, per Section IV-B.
    RETURNS_FOOTPRINT = 96 * 1024 * 1024
    #: Output image + scratch footprint (bytes).  Small enough to stay
    #: L3-resident even under the deepest way gating — which is why
    #: SIRE's L2/L3 miss counts stay flat at the lowest caps while
    #: Stereo's jump (Table II).
    IMAGE_FOOTPRINT = 3 * 1024 * 1024
    #: Hot interpolation/accumulator working set (bytes): L1-resident.
    HOT_FOOTPRINT = 16 * 1024

    def __init__(self) -> None:
        super().__init__(
            WorkloadSpec(
                name="SIRE/RSM",
                total_instructions=9.31e11,
                loads_stores_per_instruction=0.36,
                ifetch_per_instruction=0.22,
                description=(
                    "UWB impulse-radar SAR back-projection with recursive "
                    "sidelobe minimisation (stand-in for the ARL Lam dataset)"
                ),
            )
        )

    def build_slice(
        self, rng: np.random.Generator, n_data_accesses: int
    ) -> TraceSlice:
        """Streaming-dominated composite trace (see module docstring).

        Mix (by access count): a hot, cache-resident interpolation
        buffer; the streamed returns matrix; the streamed image/scratch
        arrays.  Weights chosen so the baseline per-instruction miss
        rates land near Table II's B0 row.
        """
        if n_data_accesses < 1000:
            raise WorkloadError("slice too short to be representative")
        # Weights: 90 hot : 8 returns-stream : 2 image-stream.  The
        # stream shares set the (flat, level-independent) miss rates of
        # Table II's B0 row; the hot interpolation buffer supplies the
        # L1-resident majority.
        total_w = 100
        n_hot = n_data_accesses * 90 // total_w
        n_ret = n_data_accesses * 8 // total_w
        n_img = n_data_accesses - n_hot - n_ret
        hot = random_trace(
            self.HOT_FOOTPRINT, n_hot, rng, element_bytes=8, base=0
        )
        returns_base = 1 << 30
        start = int(rng.integers(0, self.RETURNS_FOOTPRINT // 4))
        ret = streaming_trace(
            self.RETURNS_FOOTPRINT,
            n_ret,
            element_bytes=4,
            base=returns_base,
            start_offset=start,
        )
        img = streaming_trace(
            self.IMAGE_FOOTPRINT,
            n_img,
            element_bytes=8,
            base=2 << 30,
            start_offset=int(rng.integers(0, self.IMAGE_FOOTPRINT // 8)),
        )
        data = interleave(hot, ret, img, weights=(90, 8, 2))
        # Seed the L3 with the image/scratch footprint; the returns
        # stream needs no preload (its misses are compulsory anyway).
        preload = streaming_trace(
            self.IMAGE_FOOTPRINT,
            self.IMAGE_FOOTPRINT // 64,
            element_bytes=64,
            base=2 << 30,
        )
        instructions = self.slice_instructions(len(data))
        ifetch = loop_ifetch_trace(
            self.ifetches_for(instructions),
            rng,
            hot_pages=18,
            cold_pages=320,
            excursion_probability=3e-5,
        )
        return TraceSlice(
            data_addresses=data,
            ifetch_addresses=ifetch,
            instructions=instructions,
            warmup_fraction=0.2,
            preload_addresses=preload,
        )

    def run_reference(self, scale: float = 1.0, seed: int = 0) -> SarImageFormation:
        """Run the real pipeline at a reduced scale.

        ``scale`` ~ 1.0 corresponds to a small-but-real 96x96 image
        over 48 apertures (the paper-scale input would take hours in
        pure Python; the algorithm is identical).
        """
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        rng = np.random.default_rng(seed)
        scene = SireScene.random(rng, n_scatterers=8)
        n_ap = max(12, int(48 * scale))
        n_samp = max(256, int(768 * scale))
        side = max(32, int(96 * scale))
        returns, ap_x, ft = generate_returns(
            scene, n_apertures=n_ap, n_samples=n_samp, rng=rng
        )
        image = rsm_denoise(
            returns,
            ap_x,
            ft,
            (side, side),
            scene.extent_x_m,
            scene.extent_y_m,
            scene.standoff_y_m,
            iterations=6,
            keep_fraction=0.8,
            rng=rng,
        )
        # Peak-to-background: scatterer peaks should dominate the field.
        peak = float(image.max())
        background = float(np.median(image) + 1e-12)
        ptb_db = 10.0 * np.log10(peak / background)
        return SarImageFormation(
            image=image, scene=scene, peak_to_background_db=ptb_db
        )
