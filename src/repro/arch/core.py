"""Core timing model.

Converts an instruction stream with a given memory behaviour into wall
time under the current operating point.  The model is the classic
CPI-stack decomposition the paper relies on when it computes execution
time from "cycle count x clock speed" (Section III):

``time_per_instruction = (base_CPI / f + memory_stall_seconds) / duty``

- ``base_CPI / f`` is the compute component, which scales with the DVFS
  frequency — this is why moderate caps cost roughly the frequency
  ratio;
- ``memory_stall_seconds`` is the per-instruction stall from cache/TLB
  misses priced by :mod:`repro.mem.latency` — it does *not* scale with
  core frequency, and it inflates when the BMC gates the memory
  hierarchy;
- ``duty`` models clock modulation (T-state-like throttling), the
  mechanism of last resort below the DVFS floor.

A small speculative-execution wobble is applied to *executed* (not
committed) instruction counts, reproducing the <= 0.36 % run-to-run
variation Section IV reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..units import require_positive, require_non_negative

__all__ = ["CoreTimingModel", "CoreTimingBreakdown", "SPECULATION_WOBBLE_MAX"]

#: Upper bound on the speculative-execution wobble applied to executed
#: instruction counts ("at most 0.36%", Section IV).
SPECULATION_WOBBLE_MAX = 0.0036


@dataclass(frozen=True)
class CoreTimingBreakdown:
    """Where the time of a slice of execution went."""

    instructions: float
    wall_s: float
    compute_s: float
    stall_s: float
    throttle_s: float

    @property
    def cycles(self) -> float:
        """Derived cycle count is computed by callers that know f."""
        raise NotImplementedError(
            "cycles depend on frequency; use CoreTimingModel.cycles_for"
        )

    def __post_init__(self) -> None:
        for name in ("instructions", "wall_s", "compute_s", "stall_s", "throttle_s"):
            if getattr(self, name) < 0:
                raise SimulationError(f"negative timing component {name}")


class CoreTimingModel:
    """Timing of one in-order-equivalent core with a CPI stack."""

    def __init__(self, base_cpi: float) -> None:
        self._base_cpi = require_positive(base_cpi, "base_cpi")

    @property
    def base_cpi(self) -> float:
        """Cycles per instruction on non-stall work."""
        return self._base_cpi

    def seconds_per_instruction(
        self, freq_hz: float, stall_ns_per_instr: float, duty: float = 1.0
    ) -> float:
        """Average wall seconds consumed by one instruction."""
        freq_hz = require_positive(freq_hz, "freq_hz")
        stall_s = require_non_negative(stall_ns_per_instr, "stall_ns_per_instr") * 1e-9
        duty = require_positive(duty, "duty")
        if duty > 1.0:
            raise SimulationError(f"duty {duty} exceeds 1.0")
        return (self._base_cpi / freq_hz + stall_s) / duty

    def instructions_in(
        self,
        dt_s: float,
        freq_hz: float,
        stall_ns_per_instr: float,
        duty: float = 1.0,
    ) -> float:
        """Instructions retired in a wall-clock slice of ``dt_s``."""
        dt_s = require_non_negative(dt_s, "dt_s")
        spi = self.seconds_per_instruction(freq_hz, stall_ns_per_instr, duty)
        return dt_s / spi

    def time_for(
        self,
        instructions: float,
        freq_hz: float,
        stall_ns_per_instr: float,
        duty: float = 1.0,
    ) -> CoreTimingBreakdown:
        """Wall time and its decomposition for an instruction budget."""
        instructions = require_non_negative(instructions, "instructions")
        spi = self.seconds_per_instruction(freq_hz, stall_ns_per_instr, duty)
        wall = instructions * spi
        compute = instructions * self._base_cpi / freq_hz
        stall = instructions * stall_ns_per_instr * 1e-9
        throttle = wall - compute - stall
        # Guard against float cancellation producing tiny negatives.
        throttle = max(0.0, throttle)
        return CoreTimingBreakdown(
            instructions=instructions,
            wall_s=wall,
            compute_s=compute,
            stall_s=stall,
            throttle_s=throttle,
        )

    def cycles_for(self, breakdown: CoreTimingBreakdown, freq_hz: float) -> float:
        """Core clock cycles spanned by a breakdown at frequency ``f``.

        Only un-throttled time accumulates cycles (the clock is gated
        during the throttle component).
        """
        freq_hz = require_positive(freq_hz, "freq_hz")
        return (breakdown.compute_s + breakdown.stall_s) * freq_hz

    @staticmethod
    def speculation_factor(rng: np.random.Generator) -> float:
        """Multiplier for executed-instruction counts for one run.

        Committed instructions are deterministic; executed instructions
        (and thus loads/stores issued) wobble by at most
        :data:`SPECULATION_WOBBLE_MAX` across runs due to speculative
        execution, matching Section IV.
        """
        return float(1.0 + rng.uniform(0.0, SPECULATION_WOBBLE_MAX))
