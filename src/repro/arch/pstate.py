"""ACPI P-states: the DVFS operating points of one core.

Section II of the paper: "P-states (the number being dependent on the
processor) translate to a range of different frequencies and voltages
that consume different amounts of power, with higher P-state numbers
representing slower processor speeds".  The experimental platform
exposes 16 P-states per core with a 1,200 MHz floor (Table II pins the
average frequency at 1,200 MHz for caps <= 130 W) and a 2,701 MHz
top reading.

:class:`PStateTable` generates the table from a
:class:`~repro.config.PStateTableConfig` and provides the lookups the
BMC controller needs: neighbours of a state, the pair of states whose
power brackets a cap, and frequency/voltage for each index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..config import PStateTableConfig
from ..errors import ConfigError
from ..units import MHZ

__all__ = ["PState", "PStateTable"]


@dataclass(frozen=True)
class PState:
    """One DVFS operating point.

    ``index`` follows ACPI convention: P0 is the fastest state and
    larger indices are slower/lower-power.
    """

    index: int
    freq_hz: float
    voltage_v: float

    @property
    def freq_mhz(self) -> float:
        """Frequency in MHz, as the paper's Table II reports it."""
        return self.freq_hz / MHZ

    def dynamic_power_w(self, ceff_f: float, activity: float = 1.0) -> float:
        """Dynamic power ``C * f * V^2 * activity`` at this point.

        This is the CMOS switching-power equation Section II-B quotes
        from Rabaey et al.
        """
        return ceff_f * self.freq_hz * self.voltage_v**2 * activity


class PStateTable:
    """The ordered table of P-states for one core.

    States are generated with frequencies evenly spaced from the floor
    to one step under the maximum, and the P0 frequency set exactly to
    ``f_max`` (2,701 MHz by default, reproducing the turbo-read artifact
    in the paper's tables).  Voltage scales affinely with frequency
    between ``v_min`` and ``v_max``.
    """

    def __init__(self, config: PStateTableConfig | None = None) -> None:
        self._config = config or PStateTableConfig()
        cfg = self._config
        freqs_mhz = np.linspace(cfg.f_min_mhz, cfg.f_max_mhz, cfg.n_states)
        freqs_mhz = freqs_mhz[::-1]  # P0 first (fastest)
        span = cfg.f_max_mhz - cfg.f_min_mhz
        self._states: List[PState] = []
        for idx, f_mhz in enumerate(freqs_mhz):
            v = cfg.v_min + (cfg.v_max - cfg.v_min) * (f_mhz - cfg.f_min_mhz) / span
            self._states.append(
                PState(index=idx, freq_hz=float(f_mhz) * MHZ, voltage_v=float(v))
            )

    @property
    def config(self) -> PStateTableConfig:
        """The generating configuration."""
        return self._config

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self):
        return iter(self._states)

    def __getitem__(self, index: int) -> PState:
        if not 0 <= index < len(self._states):
            raise ConfigError(
                f"P-state index {index} out of range 0..{len(self._states) - 1}"
            )
        return self._states[index]

    @property
    def fastest(self) -> PState:
        """P0."""
        return self._states[0]

    @property
    def slowest(self) -> PState:
        """The DVFS floor (P15 on the paper's platform, 1,200 MHz)."""
        return self._states[-1]

    @property
    def floor_freq_hz(self) -> float:
        """Frequency of the slowest state."""
        return self.slowest.freq_hz

    def states(self) -> Sequence[PState]:
        """All states, P0 first."""
        return tuple(self._states)

    def slower(self, state: PState) -> PState:
        """The next-slower state (or ``state`` itself at the floor)."""
        if state.index >= len(self._states) - 1:
            return self._states[-1]
        return self._states[state.index + 1]

    def faster(self, state: PState) -> PState:
        """The next-faster state (or ``state`` itself at P0)."""
        if state.index <= 0:
            return self._states[0]
        return self._states[state.index - 1]

    def nearest_below_frequency(self, freq_hz: float) -> PState:
        """The fastest state whose frequency does not exceed ``freq_hz``."""
        for st in self._states:
            if st.freq_hz <= freq_hz + 0.5:  # tolerate float fuzz
                return st
        return self.slowest

    def bracketing_pair(
        self, power_of_state, budget_w: float
    ) -> Tuple[PState, PState]:
        """The two adjacent states whose power brackets ``budget_w``.

        ``power_of_state`` maps a :class:`PState` to the node power that
        state would produce.  Returns ``(faster, slower)`` such that
        ``power(slower) <= budget_w <= power(faster)`` when the budget is
        reachable; otherwise clamps to the table's ends (both elements
        equal).  This is exactly the Section II-A mechanism: "if the
        power cap falls between the power consumption associated with
        two P-states, the BMC switches between the two states".
        """
        powers = [power_of_state(st) for st in self._states]
        return self.bracketing_pair_from_powers(powers, budget_w)

    def bracketing_pair_from_powers(
        self, powers: Sequence[float], budget_w: float
    ) -> Tuple[PState, PState]:
        """:meth:`bracketing_pair` over a precomputed per-state power list.

        ``powers[i]`` is the node power of state ``i`` (P0 first); the
        list typically comes from
        :meth:`repro.power.model.PStatePowerTable.powers_w`, which lets
        callers in the control loop skip re-evaluating the power model
        sixteen times per bracket.
        """
        # powers decrease with index (slower => less power).
        if budget_w >= powers[0]:
            return self._states[0], self._states[0]
        if budget_w <= powers[-1]:
            return self._states[-1], self._states[-1]
        for i in range(len(self._states) - 1):
            if powers[i] >= budget_w >= powers[i + 1]:
                return self._states[i], self._states[i + 1]
        # Non-monotone power curves should not occur, but fall back safely.
        return self._states[-1], self._states[-1]

    def dither_fraction(
        self, power_of_state, budget_w: float
    ) -> Tuple[PState, PState, float]:
        """Time fraction to spend in the faster of the bracketing states.

        Returns ``(faster, slower, alpha)`` where running ``alpha`` of
        the time in ``faster`` and ``1 - alpha`` in ``slower`` meets the
        budget in expectation.
        """
        powers = [power_of_state(st) for st in self._states]
        return self.dither_fraction_from_powers(powers, budget_w)

    def dither_fraction_from_powers(
        self, powers: Sequence[float], budget_w: float
    ) -> Tuple[PState, PState, float]:
        """:meth:`dither_fraction` over a precomputed per-state power list."""
        fast, slow = self.bracketing_pair_from_powers(powers, budget_w)
        if fast.index == slow.index:
            return fast, slow, 1.0
        p_fast = powers[fast.index]
        p_slow = powers[slow.index]
        if p_fast <= p_slow:  # degenerate; avoid divide-by-zero
            return fast, slow, 1.0
        alpha = (budget_w - p_slow) / (p_fast - p_slow)
        return fast, slow, float(min(1.0, max(0.0, alpha)))
