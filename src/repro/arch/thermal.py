"""Lumped RC thermal model of the node.

Static (leakage) power "is related to, among other things, the heat of
the processor and, thus, is indirectly affected by frequency scaling"
(Section II-B).  We model the node as one thermal mass: temperature
relaxes exponentially toward ambient plus ``R_th * (P - P_idle)`` with
time constant ``tau``.  The power model then scales leakage with
temperature, closing the loop the paper describes.
"""

from __future__ import annotations

from ..config import ThermalConfig
from ..units import require_non_negative

__all__ = ["ThermalModel"]


class ThermalModel:
    """One-pole thermal model: ``dT/dt = (T_target - T) / tau``."""

    def __init__(
        self, config: ThermalConfig | None = None, idle_power_w: float = 101.0
    ) -> None:
        self._config = config or ThermalConfig()
        self._idle_power_w = require_non_negative(idle_power_w, "idle_power_w")
        self._temp_c = self._config.ambient_c

    @property
    def config(self) -> ThermalConfig:
        """The thermal constants."""
        return self._config

    @property
    def temperature_c(self) -> float:
        """Current node temperature (deg C)."""
        return self._temp_c

    @property
    def idle_power_w(self) -> float:
        """Power at or below which the node sits at ambient."""
        return self._idle_power_w

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature at constant power."""
        excess = max(0.0, require_non_negative(power_w, "power_w") - self._idle_power_w)
        return self._config.ambient_c + self._config.r_th_c_per_w * excess

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the model by ``dt_s`` at the given power; returns T.

        Uses the exact discretisation of the one-pole ODE so the model
        is stable for any step size (control quanta vary per run).
        """
        dt_s = require_non_negative(dt_s, "dt_s")
        import math

        target = self.steady_state_c(power_w)
        decay = math.exp(-dt_s / self._config.tau_s)
        self._temp_c = target + (self._temp_c - target) * decay
        return self._temp_c

    def set_temperature(self, temperature_c: float) -> None:
        """Install an externally evolved temperature.

        Used by the block-step kernel, which advances the identical
        one-pole recurrence in local variables and commits the final
        temperature here; the value must come from the same arithmetic
        :meth:`step` performs or bit-identity is lost.
        """
        self._temp_c = float(temperature_c)

    def reset(self, temperature_c: float | None = None) -> None:
        """Reset to ambient (or a supplied temperature)."""
        self._temp_c = (
            self._config.ambient_c if temperature_c is None else float(temperature_c)
        )
