"""Simulated node architecture: P/C-states, core timing, thermal, node.

This package is the hardware substrate the paper's experiments ran on —
a dual-socket Sandy Bridge node — rebuilt as a discrete-time simulator.
"""

from .pstate import PState, PStateTable
from .cstate import CStateModel
from .thermal import ThermalModel
from .core import CoreTimingModel, CoreTimingBreakdown
from .node import Node, NodePowerBreakdown

__all__ = [
    "PState",
    "PStateTable",
    "CStateModel",
    "ThermalModel",
    "CoreTimingModel",
    "CoreTimingBreakdown",
    "Node",
    "NodePowerBreakdown",
]
