"""ACPI C-states: idle states of one core.

Section II: "C-states allow an idle processor (in any other C-state
besides C0) to turn off unused components to save power.  Higher C-state
numbers represent deeper CPU sleep states (with slower wake-up times)".

The C-state model serves two purposes in the reproduction:

1. it sets the node's idle power (all cores parked in a deep state gives
   the 100-103 W idle the paper reports), and
2. it powers the race-to-idle ablation (Section II-B discusses when
   "race to idle" beats running slowly), where a workload sprints at P0
   and then parks in C6 for the remainder of its period.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..config import CStateSpec
from ..errors import ConfigError
from ..units import require_fraction, require_non_negative

__all__ = ["CStateModel"]


class CStateModel:
    """Idle-state bookkeeping for one core.

    Parameters
    ----------
    specs:
        Ordered C-state specs, shallowest (C0) first.  C0 must be
        present with ``power_fraction == 1.0``.
    """

    def __init__(self, specs: Sequence[CStateSpec]) -> None:
        if not specs:
            raise ConfigError("need at least C0")
        if specs[0].name != "C0" or specs[0].power_fraction != 1.0:
            raise ConfigError("first C-state must be C0 with power fraction 1.0")
        fractions = [s.power_fraction for s in specs]
        if any(b > a for a, b in zip(fractions, fractions[1:])):
            raise ConfigError("deeper C-states must not consume more power")
        self._specs: Tuple[CStateSpec, ...] = tuple(specs)
        self._by_name: Dict[str, CStateSpec] = {s.name: s for s in specs}
        self._residency_s: Dict[str, float] = {s.name: 0.0 for s in specs}

    @property
    def specs(self) -> Tuple[CStateSpec, ...]:
        """All C-state specs, shallowest first."""
        return self._specs

    def spec(self, name: str) -> CStateSpec:
        """Look up a state by name (``"C6"``)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"unknown C-state {name!r}") from None

    @property
    def deepest(self) -> CStateSpec:
        """The deepest (lowest-power) state."""
        return self._specs[-1]

    def record_residency(self, name: str, duration_s: float) -> None:
        """Accumulate time spent in a state (for reports/ablations)."""
        self.spec(name)
        self._residency_s[name] += require_non_negative(duration_s, "duration_s")

    def residency_s(self, name: str) -> float:
        """Total time recorded in a state."""
        self.spec(name)
        return self._residency_s[name]

    def reset_residency(self) -> None:
        """Zero all residency counters."""
        for k in self._residency_s:
            self._residency_s[k] = 0.0

    def idle_power_fraction(self, name: str) -> float:
        """Core-power multiplier while parked in ``name``."""
        return self.spec(name).power_fraction

    def wake_overhead_s(self, name: str, wakes: int) -> float:
        """Total wake latency for ``wakes`` transitions out of ``name``."""
        if wakes < 0:
            raise ConfigError("wake count must be non-negative")
        return self.spec(name).wake_latency_us * 1e-6 * wakes

    def race_to_idle_energy_j(
        self,
        busy_power_w: float,
        idle_core_power_w: float,
        busy_s: float,
        period_s: float,
        park_state: str = "C6",
        wakes: int = 1,
    ) -> float:
        """Energy of sprint-then-park over one period.

        The core runs flat out for ``busy_s`` at ``busy_power_w`` then
        parks in ``park_state`` (whose residual power is
        ``idle_core_power_w * power_fraction``) for the rest of the
        period, paying the state's wake latency at full power for each
        wake.  Used by the race-to-idle ablation bench.
        """
        busy_s = require_non_negative(busy_s, "busy_s")
        period_s = require_non_negative(period_s, "period_s")
        if busy_s > period_s:
            raise ConfigError("busy time cannot exceed the period")
        spec = self.spec(park_state)
        wake_s = self.wake_overhead_s(park_state, wakes)
        idle_s = max(0.0, period_s - busy_s - wake_s)
        frac = require_fraction(spec.power_fraction, "power_fraction")
        return (
            busy_power_w * (busy_s + wake_s)
            + idle_core_power_w * frac * idle_s
        )
