"""The simulated compute node.

One :class:`Node` bundles everything that physically exists in the
paper's platform: the P-state table and C-state model of its cores, the
memory hierarchy (per-core L1/L2, shared L3, TLBs, DRAM), the thermal
mass, and the power model.  The BMC (:mod:`repro.bmc`) regulates it;
the runner (:mod:`repro.core.runner`) executes workloads on it.

The paper's applications run on a single core, so the node exposes one
active core's timing model and hierarchy; the remaining 15 cores sit in
a deep C-state and contribute only leakage (which the power model's
idle calibration includes).
"""

from __future__ import annotations

from ..config import NodeConfig, sandy_bridge_config
from ..mem.hierarchy import MemoryHierarchy
from ..mem.reconfig import ReconfigEngine
from ..power.model import NodePowerModel, OperatingPoint
from .core import CoreTimingModel
from .cstate import CStateModel
from .pstate import PState, PStateTable
from .thermal import ThermalModel

__all__ = ["Node", "NodePowerBreakdown"]

# Re-exported for convenience in reports.
from ..power.model import PowerBreakdown as NodePowerBreakdown  # noqa: E402


class Node:
    """A power-managed compute node."""

    def __init__(self, config: NodeConfig | None = None) -> None:
        self._config = config or sandy_bridge_config()
        self.pstates = PStateTable(self._config.pstates)
        self.cstates = CStateModel(self._config.cstates)
        self.power_model = NodePowerModel(self._config)
        self.thermal = ThermalModel(
            self._config.thermal,
            idle_power_w=self.power_model.idle_power_w(),
        )
        # Built on first use: allocating every cache's set lists is the
        # most expensive part of node construction, and runs that take
        # their miss rates from the trace engine never touch it.
        self._hierarchy: MemoryHierarchy | None = None
        self.reconfig = ReconfigEngine(self._config)
        self.core = CoreTimingModel(self._config.base_cpi)
        #: Current DVFS state (P0 at boot).
        self.pstate: PState = self.pstates.fastest
        #: Current clock-modulation duty factor (1.0 = unthrottled).
        self.duty: float = 1.0

    @property
    def config(self) -> NodeConfig:
        """The node's static configuration."""
        return self._config

    @property
    def hierarchy(self) -> MemoryHierarchy:
        """The active core's memory hierarchy (built lazily)."""
        if self._hierarchy is None:
            self._hierarchy = MemoryHierarchy(self._config)
        return self._hierarchy

    def set_pstate(self, state: PState) -> None:
        """Apply a DVFS transition (instantaneous at our timescale)."""
        self.pstate = state

    def set_duty(self, duty: float) -> None:
        """Apply a clock-modulation duty factor in (0, 1]."""
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0,1], got {duty}")
        self.duty = float(duty)

    def operating_point(
        self,
        *,
        activity: float = 1.0,
        gating_saving_w: float = 0.0,
        dram_traffic_bps: float = 0.0,
        busy_cores: int = 1,
    ) -> OperatingPoint:
        """Snapshot the current operating point for the power model."""
        return OperatingPoint(
            pstate=self.pstate,
            duty=self.duty,
            activity=activity,
            gating_saving_w=gating_saving_w,
            dram_traffic_bps=dram_traffic_bps,
            temperature_c=self.thermal.temperature_c,
            busy_cores=busy_cores,
        )

    def power_w(
        self,
        *,
        activity: float = 1.0,
        gating_saving_w: float = 0.0,
        dram_traffic_bps: float = 0.0,
        busy_cores: int = 1,
    ) -> float:
        """True node power right now."""
        return self.power_model.node_power_w(
            self.operating_point(
                activity=activity,
                gating_saving_w=gating_saving_w,
                dram_traffic_bps=dram_traffic_bps,
                busy_cores=busy_cores,
            )
        )

    def idle_power_w(self) -> float:
        """Power with all cores parked (the paper's 100-103 W)."""
        return self.power_model.idle_power_w(self.thermal.temperature_c)

    def reset(self) -> None:
        """Return the node to its boot state (P0, unthrottled, cold)."""
        self.pstate = self.pstates.fastest
        self.duty = 1.0
        self.thermal.reset()
        if self._hierarchy is not None:
            self.hierarchy.flush_all()
            self.hierarchy.reset_stats()
            self.reconfig.apply(
                self.hierarchy, type(self.hierarchy.gating).ungated()
            )
