"""Command-line interface: ``repro-powercap`` / ``python -m repro``.

Subcommands map one-to-one onto the paper's experiments:

- ``baseline``    — Table I (uncapped power and time for both apps);
- ``sweep``       — Table II rows for one workload across caps;
- ``stride``      — the Figure 3/4 stride microbenchmark grid;
- ``amenability`` — the future-work characterisation (knee, cap range);
- ``predict``     — predict cap impact from baseline counters alone;
- ``multicore``   — core-count x cap scaling (future work #1);
- ``detect``      — identify the active mechanisms at a cap (#2);
- ``fleet``       — vectorized fleet-scale DCM simulation (budget
  tree, traffic model, throughput/SLO attainment; docs/FLEET.md);
- ``serve``       — the long-lived experiment service (HTTP API, job
  queue, persistent SQLite result store, ``/metrics``);
- ``inspect``     — show the provenance manifest of a result file or a
  stored service job (``--format json`` for machine-readable output;
  fleet run documents get a dedicated provenance/health block);
- ``timeline``    — render the telemetry timelines recorded during a
  sweep or a saved fleet run (summaries, ``--ascii`` sparklines, or
  ``--csv``);
- ``top``         — live ASCII dashboard over a running service's
  ``/metrics`` + ``/healthz`` (queue, workers, rate cache, stream
  bus, fleet health, detections);
- ``trends``      — regression trends over the observability archive's
  run history (median-shift per series against a named baseline,
  ASCII sparklines, ``--check`` for CI gating, ``--ingest`` to append
  BENCH_*.json documents);
- ``compare``     — per-series deltas between two archived runs.

All subcommands accept ``--scale`` to shrink the instruction budgets
(the shape is scale-invariant; see DESIGN.md §5) and ``--seed`` for
reproducibility.  ``sweep`` and ``baseline`` take ``--format json``
for structured output that round-trips through
:mod:`repro.core.serialize` (the table stays the default).

Observability flags (global; see docs/OBSERVABILITY.md): ``--log-level``
and ``--log-json`` configure structured logging on stderr (overriding
``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSON``); ``--trace-out PATH`` records
every engine span — plus telemetry counter tracks — and writes a Chrome
``trace_event`` profile on exit; ``--telemetry-period`` /
``--no-telemetry`` control in-run telemetry sampling (overriding
``REPRO_TELEMETRY_PERIOD`` / ``REPRO_TELEMETRY``); ``--profile``
samples the process with the background profiler (overriding
``REPRO_PROFILE``; ``--profile-hz`` tunes the rate and
``--profile-out`` writes the JSON report).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

import numpy as np

from .config import PAPER_POWER_CAPS_W
from .core.amenability import characterize_amenability
from .core.detector import TechniqueDetector
from .core.experiment import PowerCapExperiment, validate_caps
from .core.multicore import MultiCoreRunner
from .core.predictor import CapImpactPredictor
from .core.report import (
    render_stride_figure,
    render_table1,
    render_table2,
)
from .core.runner import NodeRunner
from .core.serialize import experiment_to_dict, extract_timelines
from .errors import ReproError
from .mem.reconfig import GatingState
from .obs.logging import configure_logging, get_logger
from .obs.profile import ProfileConfig, SamplingProfiler, profiling_enabled
from .obs.provenance import render_provenance
from .obs.timeseries import TelemetryConfig, timeline_from_dict
from .obs.tracing import span, start_tracing, stop_tracing
from .rng import DEFAULT_SEED
from .workloads import WORKLOAD_REGISTRY as _WORKLOADS
from .workloads import make_workload as _make_workload
from .workloads.stride import StrideBenchmark

__all__ = ["main", "build_parser"]

_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-powercap",
        description=(
            "Reproduction of 'Evaluation of Core Performance when the "
            "Node is Power Capped using Intel Data Center Manager' "
            "(ICPPW 2012)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="experiment seed"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="instruction-budget scale (1.0 = paper-calibrated budgets)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep-style commands (1 = serial; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--rate-cache",
        default=os.environ.get("REPRO_RATE_CACHE"),
        help="path to a persistent miss-rate cache (JSON); defaults to "
        "the REPRO_RATE_CACHE environment variable",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="structured-log threshold on stderr (overrides "
        "REPRO_LOG_LEVEL; default warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of human-readable text "
        "(overrides REPRO_LOG_JSON)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record engine spans and write a Chrome trace_event "
        "profile (load in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--telemetry-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated seconds per telemetry timeline sample "
        "(overrides REPRO_TELEMETRY_PERIOD; default 0.25)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable in-run telemetry timelines (simulation results "
        "are bit-identical either way)",
    )
    parser.add_argument(
        "--no-block-step",
        action="store_true",
        help="evaluate the control loop quantum by quantum instead of "
        "with the block-step kernel (overrides REPRO_BLOCK_STEP; "
        "results are bit-identical either way — see "
        "docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="run sweep tasks strictly one at a time instead of "
        "marching stable segments of many runs as one numpy batch "
        "(overrides REPRO_BATCH; results are bit-identical either "
        "way — see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample the process with the background profiler and log "
        "the phase/function report on exit (overrides REPRO_PROFILE; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="profiler sampling rate (overrides REPRO_PROFILE_HZ; "
        "default 97)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="write the profiler's JSON report to PATH (implies "
        "--profile)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    baseline = sub.add_parser("baseline", help="Table I: uncapped baselines")
    baseline.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json round-trips via repro.core.serialize)",
    )

    sweep = sub.add_parser("sweep", help="Table II: the cap sweep")
    sweep.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="stereo"
    )
    sweep.add_argument(
        "--caps",
        type=float,
        nargs="*",
        default=list(PAPER_POWER_CAPS_W),
        help="caps in Watts (default: the paper's nine)",
    )
    sweep.add_argument("--reps", type=int, default=1)
    sweep.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json round-trips via repro.core.serialize)",
    )

    stride = sub.add_parser("stride", help="Figures 3/4: stride sweep")
    stride.add_argument(
        "--cap",
        type=float,
        default=None,
        help="enforce a cap during the sweep (Figure 4); default uncapped",
    )

    amen = sub.add_parser(
        "amenability", help="characterise amenability to capping"
    )
    amen.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="stereo"
    )
    amen.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        help="tolerable slowdown (1.25 = the paper's 25%% bound)",
    )
    amen.add_argument("--reps", type=int, default=1)

    predict = sub.add_parser(
        "predict", help="predict cap impact from baseline counters"
    )
    predict.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="stereo"
    )
    predict.add_argument(
        "--caps",
        type=float,
        nargs="*",
        default=list(PAPER_POWER_CAPS_W),
    )

    multicore = sub.add_parser(
        "multicore", help="core-count x cap scaling table"
    )
    multicore.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="stereo"
    )
    multicore.add_argument(
        "--cores", type=int, nargs="*", default=[1, 2, 4]
    )
    multicore.add_argument("--cap", type=float, default=None)

    detect = sub.add_parser(
        "detect", help="identify active power-management mechanisms"
    )
    detect.add_argument("--cap", type=float, required=True)

    figures = sub.add_parser(
        "figures", help="render Figures 1/2 as terminal charts"
    )
    figures.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="sire"
    )
    figures.add_argument("--reps", type=int, default=1)

    fleet = sub.add_parser(
        "fleet",
        help="vectorized fleet-scale DCM simulation (see docs/FLEET.md)",
    )
    fleet.add_argument(
        "--rows", type=int, default=2, help="datacenter rows"
    )
    fleet.add_argument(
        "--racks-per-row", type=int, default=4, help="racks per row"
    )
    fleet.add_argument(
        "--nodes-per-rack", type=int, default=32, help="nodes per rack"
    )
    fleet.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="JSON topology spec (rows/racks_per_row/nodes_per_rack/"
        "node_classes); overrides the shape flags",
    )
    fleet.add_argument(
        "--traffic",
        default="diurnal",
        help="traffic model: flat, diurnal, bursty, or a JSON object "
        "with a 'type' key and model knobs",
    )
    fleet.add_argument(
        "--budget-frac",
        type=float,
        default=0.8,
        help="fleet budget as a fraction of the sum of max caps "
        "(ignored when --budget-w is given)",
    )
    fleet.add_argument(
        "--budget-w",
        type=float,
        default=None,
        help="absolute fleet budget in Watts",
    )
    fleet.add_argument(
        "--strategy",
        choices=("equal", "proportional", "priority"),
        default="proportional",
        help="division strategy at every budget-tree level",
    )
    fleet.add_argument(
        "--duration", type=float, default=300.0, help="simulated seconds"
    )
    fleet.add_argument(
        "--dt", type=float, default=1.0, help="control tick in seconds"
    )
    fleet.add_argument(
        "--rebalance-every",
        type=int,
        default=5,
        help="budget-tree re-division cadence in ticks",
    )
    fleet.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="rebalance hysteresis threshold in Watts",
    )
    fleet.add_argument(
        "--escalation",
        action="store_true",
        help="enable cascading cap escalation on group budget breaches",
    )
    fleet.add_argument(
        "--parity",
        action="store_true",
        help="also run the small-fleet parity check against the serial "
        "DCM stack and print the comparison table",
    )
    fleet.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json emits the full run document)",
    )
    fleet.add_argument(
        "--archive",
        default=None,
        metavar="PATH",
        help="observability archive (SQLite) to record this run and its "
        "windowed health rollups into",
    )

    serve = sub.add_parser(
        "serve",
        help="run the experiment service (job queue + HTTP API + metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="sweep worker threads"
    )
    serve.add_argument(
        "--db",
        default="repro-service.sqlite3",
        help="result store: a SQLite path (default), sqlite://PATH, or "
        "memory:// for an ephemeral in-process store",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="retry budget per job before it is marked FAILED",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--archive",
        default=None,
        metavar="PATH",
        help="observability archive (SQLite): record periodic /metrics "
        "snapshots and per-run records, and serve /metrics/history + "
        "/runs/compare",
    )
    serve.add_argument(
        "--archive-period",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="wall seconds between archived metric snapshots",
    )
    serve.add_argument(
        "--frontend",
        choices=("thread", "async"),
        default="thread",
        help="HTTP front end: one thread per connection, or a single "
        "asyncio event loop (scales to thousands of connections and "
        "SSE streams)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partitioned worker shard processes (>= 2; jobs route by "
        "consistent hashing over the spec digest, each shard owns a "
        "rate-cache partition; 0 = simulate in-process; single-core "
        "hosts fall back to in-process with a warning)",
    )
    serve.add_argument(
        "--admission-rate",
        type=float,
        default=200.0,
        metavar="JOBS_PER_S",
        help="per-client sustained submission rate before 429",
    )
    serve.add_argument(
        "--admission-burst",
        type=float,
        default=400.0,
        metavar="N",
        help="per-client submission burst allowance",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        metavar="N",
        help="queue depth beyond which submissions shed with 503",
    )

    inspect = sub.add_parser(
        "inspect",
        help="show the provenance manifest of a result file or stored job",
    )
    inspect.add_argument(
        "target",
        help="a result JSON file (from sweep/baseline --format json) or "
        "a service job id",
    )
    inspect.add_argument(
        "--db",
        default="repro-service.sqlite3",
        help="service store to resolve job ids against",
    )
    inspect.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json gives machine-readable provenance "
        "plus timeline summaries)",
    )

    timeline = sub.add_parser(
        "timeline",
        help="render the telemetry timelines of a result file or stored "
        "job",
    )
    timeline.add_argument(
        "target",
        help="a result JSON file (from sweep/baseline --format json) or "
        "a service job id",
    )
    timeline.add_argument(
        "--db",
        default="repro-service.sqlite3",
        help="service store to resolve job ids against",
    )
    timeline.add_argument(
        "--channel",
        action="append",
        default=None,
        metavar="NAME",
        help="channel to include (repeatable; default: all channels)",
    )
    timeline.add_argument(
        "--cap",
        default=None,
        help="only the timeline at this cap in Watts, or 'baseline'",
    )
    timeline.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV rows (workload,cap,channel,t_s,dt_s,mean,min,max)",
    )
    timeline.add_argument(
        "--ascii",
        action="store_true",
        help="render ASCII sparkline charts instead of summaries",
    )

    top = sub.add_parser(
        "top",
        help="live ASCII dashboard over a running service's /metrics",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the experiment service",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no repaint escapes)",
    )

    trends = sub.add_parser(
        "trends",
        help="regression trends over the archived run history "
        "(median-shift per series, sparklines; --check gates CI)",
    )
    trends.add_argument(
        "--archive",
        default="repro-archive.sqlite3",
        metavar="PATH",
        help="observability archive to read (and --ingest into)",
    )
    trends.add_argument(
        "--ingest",
        action="append",
        default=None,
        metavar="PATH",
        help="BENCH_sweep.json / BENCH_fleet.json document to append "
        "into the archive before analysing (repeatable)",
    )
    trends.add_argument(
        "--kind",
        default=None,
        help="restrict to one run kind (job, fleet, bench_sweep, "
        "bench_fleet)",
    )
    trends.add_argument(
        "--series",
        action="append",
        default=None,
        metavar="NAME",
        help="series to analyse (repeatable; default: every recorded "
        "series)",
    )
    trends.add_argument(
        "--window",
        type=int,
        default=3,
        metavar="N",
        help="recent window: the median of the last N runs is compared "
        "against the baseline (or the earlier history's median)",
    )
    trends.add_argument(
        "--baseline",
        default=None,
        metavar="NAME",
        help="named baseline to compare against (default: the median "
        "of the history before the window)",
    )
    trends.add_argument(
        "--save-baseline",
        default=None,
        metavar="NAME",
        help="store the current recent medians as a named baseline "
        "and exit",
    )
    trends.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when any analysed series regressed",
    )
    trends.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format",
    )

    compare = sub.add_parser(
        "compare",
        help="per-series deltas between two archived runs",
    )
    compare.add_argument("a", help="run id of the reference run")
    compare.add_argument("b", help="run id of the candidate run")
    compare.add_argument(
        "--archive",
        default="repro-archive.sqlite3",
        metavar="PATH",
        help="observability archive to read",
    )
    compare.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format",
    )
    return parser


def _cmd_baseline(args) -> str:
    experiment = PowerCapExperiment(
        [_make_workload(n, args.scale) for n in sorted(_WORKLOADS)],
        caps_w=(),
        repetitions=1,
        seed=args.seed,
        rate_cache=args.rate_cache,
        telemetry=args.telemetry,
        block_step=args.block_step,
        batch=args.batch,
    )
    results = []
    for name in sorted(_WORKLOADS):
        workload = _make_workload(name, args.scale)
        results.append(experiment.run_workload(workload))
    if args.format == "json":
        return json.dumps(
            {r.workload: experiment_to_dict(r) for r in results},
            indent=2,
            sort_keys=True,
        )
    return render_table1(results)


def _cmd_sweep(args) -> str:
    workload = _make_workload(args.workload, args.scale)
    experiment = PowerCapExperiment(
        [workload],
        caps_w=validate_caps(args.caps),
        repetitions=args.reps,
        seed=args.seed,
        rate_cache=args.rate_cache,
        telemetry=args.telemetry,
        block_step=args.block_step,
        batch=args.batch,
    )
    result = experiment.run_workload(workload, jobs=args.jobs)
    if args.format == "json":
        return json.dumps(experiment_to_dict(result), indent=2, sort_keys=True)
    return render_table2(result)


def _cmd_stride(args) -> str:
    sizes = tuple(4 * 1024 * 4**i for i in range(7))
    strides = tuple(8 * 4**i for i in range(8))
    bench = StrideBenchmark(sizes=sizes, strides=strides, accesses_per_cell=3000)
    if args.cap is None:
        result = bench.run()
        title = "Stride microbenchmark, no power cap (ns) [Figure 3]"
    else:
        result = bench.run_capped(
            args.cap,
            np.random.default_rng(args.seed),
            cell_duration_s=0.5,
            settle_s=10.0,
        )
        title = f"Stride microbenchmark, {args.cap:.0f} W cap (ns) [Figure 4]"
    return render_stride_figure(result, title)


def _cmd_amenability(args) -> str:
    workload = _make_workload(args.workload, args.scale)
    experiment = PowerCapExperiment(
        [workload],
        caps_w=PAPER_POWER_CAPS_W,
        repetitions=args.reps,
        seed=args.seed,
        rate_cache=args.rate_cache,
        telemetry=args.telemetry,
        block_step=args.block_step,
        batch=args.batch,
    )
    result = experiment.run_workload(workload, jobs=args.jobs)
    report = characterize_amenability(result, tolerance_slowdown=args.tolerance)
    lines = [
        f"Amenability of {report.workload} "
        f"(tolerance x{report.tolerance_slowdown:.2f}):",
        "",
        f"{'cap (W)':>8} {'slowdown':>9} {'ok?':>4}",
    ]
    for cap, slowdown in report.slowdown_curve:
        ok = "yes" if cap in report.usable_caps_w else "no"
        lines.append(f"{cap:>8.0f} {slowdown:>9.2f} {ok:>4}")
    lines.append("")
    if report.knee_cap_w is not None:
        lines.append(
            f"Knee: {report.knee_cap_w:.0f} W "
            f"(headroom {report.headroom_w:.1f} W below uncapped draw)"
        )
    else:
        lines.append("No studied cap stays within the tolerance.")
    lines.append(f"Amenability score: {report.amenability_score:.2f}")
    return "\n".join(lines)


def _cmd_predict(args) -> str:
    workload = _make_workload(args.workload, args.scale)
    runner = NodeRunner(
        seed=args.seed,
        slice_accesses=200_000,
        rate_cache=args.rate_cache,
        block_step=args.block_step,
    )
    rates = runner.rates_for(workload, GatingState.ungated())
    predictor = CapImpactPredictor(runner.config)
    curve = predictor.predict_curve(rates, args.caps)
    lines = [
        f"Predicted cap impact for {workload.name} "
        "(from baseline counters only):",
        "",
        f"{'cap (W)':>8} {'regime':>13} {'freq (MHz)':>11} {'slowdown':>10}",
    ]
    for cap in sorted(curve, reverse=True):
        impact = curve[cap]
        bound = ">=" if impact.is_lower_bound else "  "
        lines.append(
            f"{cap:>8.0f} {impact.regime.value:>13} "
            f"{impact.predicted_freq_mhz:>11.0f} "
            f"{bound}{impact.predicted_slowdown:>8.2f}"
        )
    knee = predictor.knee_cap_w(rates, 1.25, args.caps)
    lines.append("")
    lines.append(
        f"Predicted knee (25% tolerance): "
        + (f"{knee:.0f} W" if knee else "none of the studied caps")
    )
    return "\n".join(lines)


def _cmd_multicore(args) -> str:
    workload_name = args.workload
    runner = MultiCoreRunner(seed=args.seed, slice_accesses=150_000)
    lines = [
        f"Multi-core scaling for {workload_name} "
        f"(cap: {'none' if args.cap is None else f'{args.cap:.0f} W'}):",
        "",
        f"{'cores':>6} {'time (s)':>9} {'power (W)':>10} {'freq (MHz)':>11} "
        f"{'Ginstr/s':>9} {'esc':>4} {'duty':>5}",
    ]
    for n in args.cores:
        workload = _make_workload(workload_name, args.scale)
        r = runner.run(workload, n, args.cap)
        lines.append(
            f"{n:>6} {r.execution_s:>9.2f} {r.avg_power_w:>10.1f} "
            f"{r.avg_freq_mhz:>11.0f} {r.throughput_ips / 1e9:>9.2f} "
            f"{r.max_escalation_level:>4} {r.min_duty:>5.2f}"
        )
    return "\n".join(lines)


def _cmd_detect(args) -> str:
    import numpy as np

    from .arch.node import Node
    from .bmc.controller import CapController
    from .bmc.sensors import PowerSensor
    from .workloads.microbench import MachineUnderTest

    node = Node()
    node.thermal.reset(38.0)
    controller = CapController(
        node, PowerSensor(np.random.default_rng(args.seed), noise_sigma_w=0.2)
    )
    controller.set_cap(args.cap)
    power = node.power_w()
    cmd = None
    for _ in range(1500):
        cmd = controller.update(power)
        p = [
            node.power_model.power_of_pstate(
                st, duty=cmd.duty, gating_saving_w=cmd.gating_saving_w,
                temperature_c=node.thermal.temperature_c,
            )
            for st in (cmd.pstate_fast, cmd.pstate_slow)
        ]
        power = cmd.alpha * p[0] + (1 - cmd.alpha) * p[1]
        node.thermal.step(power, 0.05)
    machine = MachineUnderTest(
        gating=cmd.gating, freq_hz=cmd.effective_freq_hz, duty=cmd.duty
    )
    report = TechniqueDetector(machine, seed=args.seed).detect(
        l2_footprints=(48 * 1024, 96 * 1024, 160 * 1024, 224 * 1024,
                       384 * 1024),
        l3_footprints=tuple(m * 1024 * 1024 for m in (3, 6, 10, 16)),
        itlb_page_counts=(8, 16, 32, 96, 128, 192),
    )
    return (
        f"Mechanisms at a {args.cap:.0f} W cap "
        f"(node settled at {power:.1f} W):\n" + report.summary()
    )


def _cmd_figures(args) -> str:
    from .core.ascii_plot import line_chart
    from .core.report import figure1_series, figure2_series

    workload = _make_workload(args.workload, args.scale)
    experiment = PowerCapExperiment(
        [workload],
        caps_w=PAPER_POWER_CAPS_W,
        repetitions=args.reps,
        seed=args.seed,
        rate_cache=args.rate_cache,
        telemetry=args.telemetry,
        block_step=args.block_step,
        batch=args.batch,
    )
    result = experiment.run_workload(workload, jobs=args.jobs)
    if args.workload == "sire":
        series = figure1_series(result)
        title = "Figure 1: SIRE/RSM, normalised (baseline + caps 160..120 W)"
        keys = ("PAPI_TLB_IM", "frequency", "time", "power", "energy")
    else:
        series = figure2_series(result)
        title = "Figure 2: Stereo Matching, normalised"
        keys = ("PAPI_L2_TCM", "PAPI_L3_TCM", "PAPI_TLB_IM",
                "frequency", "time", "energy")
    labels = [str(l) for l in series["labels"]]
    chart_series = {k: list(series[k]) for k in keys}
    return line_chart(chart_series, labels, title=title)


def _cmd_fleet(args) -> str:
    from .dcm.group import DivisionStrategy
    from .fleet import (
        EscalationConfig,
        FleetEngine,
        FleetTopology,
        format_fleet_summary,
        format_parity_table,
        make_traffic,
        run_parity,
    )

    if args.spec is not None:
        try:
            spec = json.loads(open(args.spec).read())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read topology spec: {exc}") from exc
        topology = FleetTopology.from_spec(spec)
    else:
        topology = FleetTopology.build(
            rows=args.rows,
            racks_per_row=args.racks_per_row,
            nodes_per_rack=args.nodes_per_rack,
        )
    traffic_arg = args.traffic.strip()
    traffic_spec = (
        json.loads(traffic_arg) if traffic_arg.startswith("{") else traffic_arg
    )
    budget_w = (
        args.budget_w
        if args.budget_w is not None
        else args.budget_frac * float(topology.max_cap_w.sum())
    )
    archive = None
    run_id = None
    health_sink = None
    if args.archive is not None:
        import time as _time

        from .obs.archive import ObsArchive

        archive = ObsArchive(args.archive)
        run_id = f"fleet-{_time.time():.3f}"
        health_sink = archive.health_sink(run_id)
    engine = FleetEngine(
        topology,
        make_traffic(traffic_spec),
        budget_w=budget_w,
        strategy=DivisionStrategy(args.strategy),
        dt_s=args.dt,
        rebalance_every=args.rebalance_every,
        rebalance_threshold_w=args.threshold,
        escalation=EscalationConfig() if args.escalation else None,
        seed=args.seed,
        health_sink=health_sink,
    )
    result = engine.run(args.duration)
    if archive is not None:
        from .obs.archive import distill_fleet_doc

        series, meta = distill_fleet_doc(result.to_dict())
        archive.record_run(run_id, "fleet", series, meta=meta, source="cli")
    parity = run_parity(strategy=DivisionStrategy(args.strategy)) if args.parity else None
    if args.format == "json":
        doc = result.to_dict()
        if parity is not None:
            doc["parity"] = parity.to_dict()
        if run_id is not None:
            doc["archived_run_id"] = run_id
        return json.dumps(doc, indent=2, sort_keys=True)
    out = format_fleet_summary(result)
    if parity is not None:
        out += "\n" + format_parity_table(parity)
    if run_id is not None:
        out += f"\narchived as {run_id} in {args.archive}"
    return out


def _cmd_serve(args) -> str:
    import signal
    import threading

    from .service.api import ExperimentService

    service = ExperimentService(
        db_path=args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        rate_cache=args.rate_cache,
        max_attempts=args.max_attempts,
        verbose=args.verbose,
        batch=args.batch,
        archive=args.archive,
        archive_period_s=args.archive_period,
        frontend=args.frontend,
        shards=args.shards,
        admission_rate=args.admission_rate,
        admission_burst=args.admission_burst,
        max_queue_depth=args.max_queue_depth,
    )

    # SIGTERM/SIGINT trigger one graceful shutdown: finish in-flight
    # jobs, re-record still-queued ones for restart recovery, flush
    # every rate-cache partition and the archive recorder, and close
    # SSE streams with a terminal event.  The front end's blocking
    # serve loop cannot shut *itself* down from a signal handler, so
    # the work runs on a helper thread.
    def _graceful(signum, frame):  # noqa: ARG001 — signal signature
        threading.Thread(
            target=service.shutdown,
            kwargs={"drain": False, "timeout": 60.0},
            name="repro-shutdown",
            daemon=True,
        ).start()

    try:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    except ValueError:
        pass  # Not the main thread (embedded use); rely on the caller.

    # Printed (and flushed) before blocking so scripts can scrape the
    # resolved port when --port 0 asked for an ephemeral one.
    if service.frontend == "thread":
        print(
            f"repro experiment service listening on {service.url}",
            flush=True,
        )
    else:
        # The async front end binds inside serve_forever; start it on
        # a background thread so the URL is printable first, then park
        # the main thread on the stop event.
        service.start()
        print(
            f"repro experiment service listening on {service.url}",
            flush=True,
        )
    print(
        f"  frontend={service.frontend} workers={service.scheduler.workers} "
        f"shards={service.scheduler.effective_shards} db={args.db} "
        f"rate_cache={args.rate_cache or 'off'} "
        f"archive={args.archive or 'off'}",
        flush=True,
    )
    try:
        if service.frontend == "thread":
            service.serve_forever()
        else:
            while not service.stopping:
                time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown(drain=False)
    return "service stopped (in-flight jobs finished; queue re-recorded)"


def _is_fleet_doc(doc) -> bool:
    """Whether ``doc`` is a ``fleet --format json`` run document."""
    return (
        isinstance(doc, dict)
        and isinstance(doc.get("provenance"), dict)
        and doc["provenance"].get("engine") == "repro.fleet"
    )


def _result_docs(data: dict) -> dict:
    """``{workload: experiment doc}`` from any result-file layout.

    ``sweep --format json`` writes a single experiment document (it has
    a ``format_version`` key); ``baseline --format json`` writes a map
    of workload name to document; ``fleet --format json`` writes a
    fleet run document (``provenance.engine == "repro.fleet"``), mapped
    here under the ``"fleet"`` key.
    """
    if not isinstance(data, dict):
        raise ReproError("not a result file: expected a JSON object")
    if "format_version" in data:
        return {data.get("workload", "?"): data}
    if _is_fleet_doc(data):
        return {"fleet": data}
    docs = {
        name: doc
        for name, doc in data.items()
        if isinstance(doc, dict) and "format_version" in doc
    }
    if not docs:
        raise ReproError(
            "not a result file: no experiment documents found "
            "(expected output of sweep/baseline/fleet --format json)"
        )
    return docs


def _load_target_docs(target: str, db: str):
    """Resolve ``target`` as a result file or a stored job id.

    Returns ``(header, docs)`` where ``header`` describes the source
    and ``docs`` is a ``{workload: experiment doc}`` map — or ``None``
    when the target is a job that has not stored a result yet.  The
    store is opened only if its file already exists; read-only commands
    must never create an empty database as a side effect.
    """
    from pathlib import Path

    path = Path(target)
    if path.is_file():
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        return f"result file {path}", _result_docs(data)
    from .service.store import ResultStore

    if not Path(db).is_file():
        raise ReproError(
            f"{target!r} is not a result file, and no service store "
            f"exists at {db!r} to resolve it as a job id"
        )
    store = ResultStore(db)
    job = store.get_job(target)
    if job is None:
        raise ReproError(
            f"{target!r} is neither a result file nor a job id in {db!r}"
        )
    header = (
        f"job {job.id}: state={job.state.value} "
        f"spec_digest={job.spec_digest}"
    )
    return header, store.get_result_dict(job.spec_digest)


def _render_fleet_doc(doc: dict, title: str) -> str:
    """Provenance/summary block for a fleet run document.

    Fleet provenance is engine-shaped (topology, strategy, traffic)
    rather than experiment-shaped, so :func:`render_provenance` does
    not apply.
    """
    prov = doc.get("provenance") or {}
    topo = doc.get("topology") or {}
    summary = doc.get("summary") or {}
    reb = doc.get("rebalances") or {}
    lines = [title]
    lines.append(
        f"  engine      {prov.get('engine', '?')} "
        f"(package {prov.get('package_version', '?')}, "
        f"git {prov.get('git', '?')})"
    )
    lines.append(
        f"  topology    {topo.get('n_nodes', '?')} nodes / "
        f"{topo.get('n_racks', '?')} racks / {topo.get('n_rows', '?')} rows"
    )
    traffic = prov.get("traffic")
    lines.append(
        f"  params      strategy={prov.get('strategy', '?')} "
        f"budget_w={prov.get('budget_w', '?')} dt_s={prov.get('dt_s', '?')} "
        f"seed={prov.get('seed', '?')}"
    )
    if traffic:
        lines.append(f"  traffic     {json.dumps(traffic, sort_keys=True)}")
    lines.append(
        f"  run         {doc.get('ticks', '?')} ticks; rebalances "
        f"applied {reb.get('applied', '?')}/{reb.get('evaluated', '?')} "
        f"(forced {reb.get('forced_by_escalation', 0)})"
    )
    for key in sorted(k for k in summary if not isinstance(summary[k], dict)):
        lines.append(f"  {key:<24} {summary[key]}")
    health = summary.get("health")
    if isinstance(health, dict):
        lines.append(
            "  health      headroom "
            f"{health.get('mean_headroom_w', '?')} W, cap-floor "
            f"{health.get('mean_capfloor_frac', '?')}, SLO debt "
            f"{health.get('mean_slo_debt_rate_w', '?')} W/s, max esc "
            f"L{health.get('max_escalation_level', '?')}"
        )
    phenomena = doc.get("phenomena") or []
    if phenomena:
        lines.append("  phenomena:")
        for det in phenomena:
            lines.append(
                f"    - {det.get('phenomenon', '?')}: "
                f"{json.dumps(det.get('detail') or {}, sort_keys=True)}"
            )
    else:
        lines.append("  phenomena:  none detected")
    return "\n".join(lines)


def _fleet_run_timeline(name: str, doc: dict):
    """A :class:`RunTimeline` rebuilt from a fleet doc's channels."""
    from .obs.timeseries import RunTimeline, SeriesChannel

    timeline = RunTimeline(
        workload=name, cap_w=None, period_s=float(doc.get("dt_s") or 1.0)
    )
    for ch_name, ch_doc in sorted(
        (doc.get("timeline_channels") or {}).items()
    ):
        timeline.channels[ch_name] = SeriesChannel.from_dict(ch_name, ch_doc)
    return timeline


def _cmd_inspect(args) -> str:
    header, docs = _load_target_docs(args.target, args.db)
    if args.format == "json":
        out = {}
        for name, doc in sorted((docs or {}).items()):
            if _is_fleet_doc(doc):
                out[name] = {
                    "provenance": doc.get("provenance"),
                    "summary": doc.get("summary"),
                    "rebalances": doc.get("rebalances"),
                    "phenomena": doc.get("phenomena"),
                    "timelines": doc.get("timelines"),
                }
                continue
            timelines = {}
            rows = {"baseline": doc.get("baseline") or {}}
            rows.update(doc.get("by_cap") or {})
            for label, row in rows.items():
                tl_doc = row.get("timeline")
                if tl_doc is not None:
                    timelines[label] = timeline_from_dict(tl_doc).summary()
            out[name] = {
                "provenance": doc.get("provenance"),
                "timelines": timelines,
            }
        return json.dumps(out, indent=2, sort_keys=True)
    lines = [header]
    if docs is None:
        lines.append("  (no stored result for this job yet)")
        return "\n".join(lines)
    for name, doc in sorted(docs.items()):
        if _is_fleet_doc(doc):
            lines.append(_render_fleet_doc(doc, title=f"{name}:"))
        else:
            lines.append(
                render_provenance(doc.get("provenance"), title=f"{name}:")
            )
    return "\n".join(lines)


def _cmd_timeline(args) -> str:
    from .core.ascii_plot import timeline_chart

    _, docs = _load_target_docs(args.target, args.db)
    if docs is None:
        raise ReproError(
            f"job {args.target!r} has no stored result yet"
        )
    fleet_docs = {n: d for n, d in docs.items() if _is_fleet_doc(d)}
    exp_docs = {n: d for n, d in docs.items() if n not in fleet_docs}
    timelines = extract_timelines(exp_docs, args.channel) if exp_docs else []
    for name, doc in sorted(fleet_docs.items()):
        timeline = _fleet_run_timeline(name, doc)
        if args.channel:
            wanted = set(args.channel)
            missing = wanted - set(timeline.names())
            if missing:
                raise ReproError(
                    f"fleet run has no channel(s) {sorted(missing)}; "
                    f"available: {timeline.names()}"
                )
            timeline.channels = {
                n: ch
                for n, ch in timeline.channels.items()
                if n in wanted
            }
        if timeline.channels:
            timelines.append(timeline)
    if args.cap is not None:
        if args.cap == "baseline":
            timelines = [t for t in timelines if t.cap_w is None]
        else:
            try:
                cap = float(args.cap)
            except ValueError:
                raise ReproError(
                    f"--cap must be a number of Watts or 'baseline', "
                    f"not {args.cap!r}"
                ) from None
            timelines = [t for t in timelines if t.cap_w == cap]
    if not timelines:
        raise ReproError(
            "no matching telemetry timelines "
            "(did the sweep run with telemetry disabled, or is --cap "
            "outside the swept caps?)"
        )
    if args.csv:
        lines = ["workload,cap,channel,t_s,dt_s,mean,min,max"]
        for timeline in timelines:
            lines.extend(timeline.to_csv().splitlines()[1:])
        return "\n".join(lines)
    if args.ascii:
        return "\n\n".join(timeline_chart(t) for t in timelines)
    lines = []
    for timeline in timelines:
        label = (
            "uncapped" if timeline.cap_w is None
            else f"{timeline.cap_w:g} W cap"
        )
        lines.append(
            f"{timeline.workload} @ {label} — "
            f"{timeline.duration_s():.1f} simulated s, "
            f"period {timeline.period_s:g} s, {timeline.reps} rep(s)"
        )
        name_w = max(len(n) for n in timeline.names())
        for name in timeline.names():
            s = timeline.channel(name).summary()
            lines.append(
                f"  {name:>{name_w}}  {s['points']:>4} pts  "
                f"min {s['min']:>12.6g}  mean {s['mean']:>12.6g}  "
                f"max {s['max']:>12.6g}  {s['unit']}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def _open_archive(path: str):
    """An existing archive, or a clear error for read-style commands."""
    from pathlib import Path

    from .obs.archive import ObsArchive

    if not Path(path).is_file():
        raise ReproError(
            f"no archive at {path!r}; create one with serve/fleet/bench "
            "--archive, or trends --ingest"
        )
    return ObsArchive(path)


def _cmd_trends(args) -> str:
    from .core.ascii_plot import sparkline
    from .obs.archive import ObsArchive, detect_trends

    if args.ingest:
        # Ingestion may create the archive; analysis alone never does.
        archive = ObsArchive(args.archive)
        for path in args.ingest:
            try:
                doc = json.loads(open(path).read())
            except (OSError, json.JSONDecodeError) as exc:
                raise ReproError(f"cannot read {path}: {exc}") from exc
            kind, run_id = archive.ingest_bench(doc, source=path)
            _log.info(
                "bench_ingested", path=path, kind=kind, run_id=run_id
            )
    else:
        archive = _open_archive(args.archive)
    trends = detect_trends(
        archive,
        series=args.series,
        kind=args.kind,
        window=args.window,
        baseline=args.baseline,
    )
    if args.save_baseline:
        values = {
            t.series: t.recent for t in trends if t.recent is not None
        }
        if not values:
            raise ReproError("no series with history to baseline")
        archive.set_baseline(args.save_baseline, values)
        return (
            f"baseline {args.save_baseline!r} saved "
            f"({len(values)} series) in {args.archive}"
        )
    regressions = [t for t in trends if t.is_regression]
    if args.format == "json":
        out = json.dumps(
            {
                "archive": args.archive,
                "window": args.window,
                "baseline": args.baseline,
                "trends": [t.to_dict() for t in trends],
                "regressions": [t.series for t in regressions],
            },
            indent=2,
            sort_keys=True,
        )
    else:
        if not trends:
            out = f"no run series recorded in {args.archive}"
        else:
            name_w = max(len(t.series) for t in trends)
            lines = [
                f"trends over {args.archive} "
                f"(window {args.window}, baseline "
                f"{args.baseline or 'history median'})"
            ]
            for t in sorted(
                trends, key=lambda t: (t.verdict != "regression", t.series)
            ):
                spark = (
                    sparkline(t.values[-24:]) if len(t.values) > 1 else "·"
                )
                if t.shift is None:
                    detail = f"n={t.n}"
                else:
                    arrow = "↑" if t.shift >= 0 else "↓"
                    detail = (
                        f"{t.reference:.6g} → {t.recent:.6g} "
                        f"({arrow}{abs(t.shift) * 100:.1f}%)"
                    )
                lines.append(
                    f"  {t.series:<{name_w}}  {t.verdict:<12} {spark}  "
                    f"{detail}"
                )
            lines.append(
                f"{len(regressions)} regression(s) across "
                f"{len(trends)} series"
            )
            out = "\n".join(lines)
    if args.check and regressions:
        # The report still lands on stdout before the nonzero exit.
        print(out)
        raise ReproError(
            f"{len(regressions)} series regressed beyond threshold: "
            + ", ".join(sorted(t.series for t in regressions))
        )
    return out


def _cmd_compare(args) -> str:
    archive = _open_archive(args.archive)
    from .errors import SimulationError

    try:
        comparison = archive.compare_runs(args.a, args.b)
    except SimulationError as exc:
        raise ReproError(str(exc)) from exc
    if args.format == "json":
        return json.dumps(comparison, indent=2, sort_keys=True)
    a, b = comparison["a"], comparison["b"]
    lines = [
        f"compare {a['run_id']} ({a['kind']}) → {b['run_id']} ({b['kind']})",
    ]
    names = sorted(comparison["series"])
    name_w = max((len(n) for n in names), default=1)
    for name in names:
        entry = comparison["series"][name]
        va, vb = entry["a"], entry["b"]
        if va is None or vb is None:
            side = "a only" if vb is None else "b only"
            value = va if vb is None else vb
            lines.append(f"  {name:<{name_w}}  {value:>14.6g}  ({side})")
            continue
        rel = entry.get("rel")
        rel_txt = "" if rel is None else f"  ({rel * +100:+.1f}%)"
        lines.append(
            f"  {name:<{name_w}}  {va:>14.6g} → {vb:>14.6g}"
            f"  Δ {entry['delta']:+.6g}{rel_txt}"
        )
    return "\n".join(lines)


def _cmd_top(args) -> None:
    """Live dashboard; writes frames itself (repaints in place)."""
    from .obs.top import run_top

    code = run_top(
        args.url,
        interval_s=args.interval,
        iterations=args.iterations,
        once=args.once,
    )
    if code != 0:  # pragma: no cover — run_top currently always returns 0
        raise ReproError(f"top exited with status {code}")
    return None


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    # Flags beat REPRO_LOG_* (configure_logging falls back to the
    # environment for whichever of the two is not given).
    configure_logging(
        level=args.log_level, json_mode=True if args.log_json else None
    )
    # Resolve the global telemetry flags into the TelemetryConfig (or
    # None = read REPRO_TELEMETRY*) that experiment commands thread
    # through to their runners.
    if args.no_telemetry:
        args.telemetry = TelemetryConfig.resolve(False)
    elif args.telemetry_period is not None:
        base = TelemetryConfig.from_env()
        args.telemetry = TelemetryConfig(
            enabled=base.enabled,
            period_s=args.telemetry_period,
            capacity=base.capacity,
        )
    else:
        args.telemetry = None
    # --no-block-step forces the scalar control loop; otherwise leave
    # the runner to its default (REPRO_BLOCK_STEP, else on).
    args.block_step = False if args.no_block_step else None
    # --no-batch likewise forces per-run sweep execution; otherwise the
    # experiment resolves REPRO_BATCH (default on).
    args.batch = False if args.no_batch else None
    collector = start_tracing() if args.trace_out else None
    # --profile / --profile-out force the sampler on; otherwise defer
    # to REPRO_PROFILE.  --profile-hz beats REPRO_PROFILE_HZ.
    profiler = None
    if profiling_enabled(
        True if (args.profile or args.profile_out) else None
    ):
        config = (
            ProfileConfig(hz=args.profile_hz)
            if args.profile_hz is not None
            else ProfileConfig.from_env()
        )
        profiler = SamplingProfiler(config).start()
    handler = {
        "baseline": _cmd_baseline,
        "sweep": _cmd_sweep,
        "stride": _cmd_stride,
        "amenability": _cmd_amenability,
        "predict": _cmd_predict,
        "multicore": _cmd_multicore,
        "detect": _cmd_detect,
        "figures": _cmd_figures,
        "fleet": _cmd_fleet,
        "serve": _cmd_serve,
        "inspect": _cmd_inspect,
        "timeline": _cmd_timeline,
        "top": _cmd_top,
        "trends": _cmd_trends,
        "compare": _cmd_compare,
    }[args.command]
    try:
        with span("cli", command=args.command):
            out = handler(args)
        if out is not None:
            print(out)
    except ReproError as exc:
        _log.error("command_failed", command=args.command, error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Stop the profiler before dumping the trace so its counter
        # track lands in the Chrome profile.
        if profiler is not None:
            report = profiler.stop()
            if args.profile_out:
                try:
                    with open(args.profile_out, "w") as fh:
                        json.dump(report.to_dict(), fh, indent=2)
                except OSError as exc:
                    print(
                        f"error: cannot write {args.profile_out}: {exc}",
                        file=sys.stderr,
                    )
        if collector is not None:
            stop_tracing()
            collector.dump(args.trace_out)
            _log.info(
                "trace_written", path=args.trace_out, spans=len(collector)
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
